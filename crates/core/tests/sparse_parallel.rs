//! Parallel sparse kernels: bit-identical outputs and shard-summed
//! counted I/O versus the sequential schedules at threads {1, 2, 4} —
//! the same discipline PR 1 pinned for the parallel dense matmul.
//!
//! Pools are striped and sized to hold each kernel's operands (the
//! in-memory regime, where parallel totals must equal sequential totals
//! exactly); `threads = 1` runs the work items inline in order, which is
//! asserted to be bit-for-bit the classic sequential kernel.

use std::sync::Arc;

use riot_array::{DenseMatrix, DenseVector, MatrixLayout, StorageCtx, TileOrder};
use riot_core::exec::{
    dmspm_parallel, spmdm_parallel, spmm_fill, spmm_parallel, spmm_plan_parallel, spmv_parallel,
};
use riot_core::{EngineConfig, EngineKind, Session};
use riot_sparse::SparseMatrix;
use riot_storage::IoSnapshot;

fn ctx(frames: usize) -> Arc<StorageCtx> {
    StorageCtx::new_mem_sharded(512, frames, 8)
}

fn band(rows: usize, cols: usize, stride: usize) -> Vec<(usize, usize, f64)> {
    (0..rows)
        .flat_map(move |r| {
            [(r, r % cols), (r, (r + stride) % cols)]
                .into_iter()
                .map(move |(i, j)| (i, j, ((i * 13 + j * 7) % 29) as f64 * 0.375 - 3.0))
        })
        .collect()
}

#[test]
fn spmv_parallel_matches_sequential_exactly() {
    let (rows, cols) = (136, 120); // ragged vs 8x8 tiles and 64-elem blocks
    let trips = band(rows, cols, 9);
    let xdata: Vec<f64> = (0..cols).map(|i| (i as f64 * 0.21).sin() * 4.0).collect();
    let run = |threads: usize| -> (Vec<f64>, u64, IoSnapshot) {
        let c = ctx(256);
        let a = SparseMatrix::from_triplets(&c, rows, cols, MatrixLayout::Square, &trips, None)
            .unwrap();
        let x = DenseVector::from_slice(&c, &xdata, None).unwrap();
        c.pool().flush_all().unwrap();
        c.clear_cache().unwrap();
        let before = c.io_snapshot();
        let (y, flops) = spmv_parallel(&a, &x, threads, None).unwrap();
        c.pool().flush_all().unwrap();
        (y.to_vec().unwrap(), flops, c.io_snapshot() - before)
    };
    let (seq, seq_flops, seq_io) = run(1);
    for threads in [2, 4] {
        let (par, par_flops, par_io) = run(threads);
        assert_eq!(par, seq, "{threads}-thread spmv result diverged");
        assert_eq!(par_flops, seq_flops);
        assert_eq!(
            (par_io.reads, par_io.writes),
            (seq_io.reads, seq_io.writes),
            "{threads}-thread spmv I/O diverged"
        );
    }
}

#[test]
fn spmdm_parallel_matches_sequential_exactly() {
    let (n1, n2, n3) = (72, 64, 40);
    let trips = band(n1, n2, 11);
    let run = |threads: usize| -> (Vec<f64>, u64, IoSnapshot) {
        let c = ctx(512);
        let a =
            SparseMatrix::from_triplets(&c, n1, n2, MatrixLayout::Square, &trips, None).unwrap();
        let b = DenseMatrix::from_fn(
            &c,
            n2,
            n3,
            MatrixLayout::Square,
            TileOrder::RowMajor,
            None,
            |i, j| ((i * 3 + j * 5) % 17) as f64 - 8.0,
        )
        .unwrap();
        c.pool().flush_all().unwrap();
        c.clear_cache().unwrap();
        let before = c.io_snapshot();
        let (t, flops) = spmdm_parallel(&a, &b, threads, None).unwrap();
        c.pool().flush_all().unwrap();
        (t.to_rows().unwrap(), flops, c.io_snapshot() - before)
    };
    let (seq, seq_flops, seq_io) = run(1);
    for threads in [2, 4] {
        let (par, par_flops, par_io) = run(threads);
        assert_eq!(par, seq, "{threads}-thread spmdm result diverged");
        assert_eq!(par_flops, seq_flops);
        assert_eq!(
            (par_io.reads, par_io.writes),
            (seq_io.reads, seq_io.writes),
            "{threads}-thread spmdm I/O diverged"
        );
    }
}

#[test]
fn dmspm_parallel_matches_sequential_exactly() {
    let (n1, n2, n3) = (40, 64, 72);
    let trips = band(n2, n3, 13);
    let run = |threads: usize| -> (Vec<f64>, u64, IoSnapshot) {
        let c = ctx(512);
        let a = DenseMatrix::from_fn(
            &c,
            n1,
            n2,
            MatrixLayout::Square,
            TileOrder::RowMajor,
            None,
            |i, j| ((i * 11 + j * 3) % 19) as f64 - 9.0,
        )
        .unwrap();
        let b =
            SparseMatrix::from_triplets(&c, n2, n3, MatrixLayout::Square, &trips, None).unwrap();
        c.pool().flush_all().unwrap();
        c.clear_cache().unwrap();
        let before = c.io_snapshot();
        let (t, flops) = dmspm_parallel(&a, &b, threads, None).unwrap();
        c.pool().flush_all().unwrap();
        (t.to_rows().unwrap(), flops, c.io_snapshot() - before)
    };
    let (seq, seq_flops, seq_io) = run(1);
    for threads in [2, 4] {
        let (par, par_flops, par_io) = run(threads);
        assert_eq!(par, seq, "{threads}-thread dmspm result diverged");
        assert_eq!(par_flops, seq_flops);
        assert_eq!(
            (par_io.reads, par_io.writes),
            (seq_io.reads, seq_io.writes),
            "{threads}-thread dmspm I/O diverged"
        );
    }
}

/// SpMM pass one fans output tiles over workers but the spill stream is
/// appended in row-major tile order, so the plan — tile nnz counts, spill
/// block count, flops — and the filled product are bit-identical at every
/// thread count.
#[test]
fn spmm_parallel_plan_and_product_match_sequential_exactly() {
    let (n1, n2, n3) = (48, 40, 48);
    let run = |threads: usize| -> (Vec<f64>, u64, u64, u64, IoSnapshot) {
        let c = ctx(512);
        let a =
            SparseMatrix::from_triplets(&c, n1, n2, MatrixLayout::Square, &band(n1, n2, 7), None)
                .unwrap();
        let b =
            SparseMatrix::from_triplets(&c, n2, n3, MatrixLayout::Square, &band(n2, n3, 5), None)
                .unwrap();
        c.pool().flush_all().unwrap();
        c.clear_cache().unwrap();
        let before = c.io_snapshot();
        let plan = spmm_plan_parallel(&a, &b, threads).unwrap();
        let (out_nnz, spill_blocks) = (plan.out_nnz(), plan.spill_blocks());
        let (t, flops) = spmm_fill(plan, None).unwrap();
        c.pool().flush_all().unwrap();
        (
            t.to_rows().unwrap(),
            out_nnz,
            spill_blocks,
            flops,
            c.io_snapshot() - before,
        )
    };
    let (seq, seq_nnz, seq_spill, seq_flops, seq_io) = run(1);
    assert!(seq_nnz > 0 && seq_spill > 0);
    for threads in [2, 4] {
        let (par, par_nnz, par_spill, par_flops, par_io) = run(threads);
        assert_eq!(par, seq, "{threads}-thread spmm product diverged");
        assert_eq!(par_nnz, seq_nnz);
        assert_eq!(
            par_spill, seq_spill,
            "{threads}-thread spill stream diverged"
        );
        assert_eq!(par_flops, seq_flops);
        assert_eq!(
            (par_io.reads, par_io.writes),
            (seq_io.reads, seq_io.writes),
            "{threads}-thread spmm I/O diverged"
        );
    }
}

/// A device error inside a worker surfaces from `spmm_plan_parallel`
/// without leaking the spill object or hanging the coordinator.
#[test]
fn parallel_spmm_plan_contains_worker_errors() {
    use riot_storage::testing::FailpointDevice;
    use riot_storage::{BufferPool, MemBlockDevice, PoolConfig};

    let device = FailpointDevice::new(Box::new(MemBlockDevice::new(512)));
    let handle = device.handle();
    let c = StorageCtx::from_pool(BufferPool::new(
        Box::new(device),
        PoolConfig {
            frames: 512,
            ..PoolConfig::default()
        },
    ));
    let a = SparseMatrix::from_triplets(&c, 32, 32, MatrixLayout::Square, &band(32, 32, 3), None)
        .unwrap();
    c.pool().flush_all().unwrap();
    c.clear_cache().unwrap();
    // Make the first occupied page unreadable: some worker dies mid-grid.
    handle.fail_reads(riot_storage::BlockId(a.dir_blocks()), 1);
    let live_before = c.live_objects();
    let blocks_before = c.total_blocks();
    assert!(
        spmm_plan_parallel(&a, &a, 4).is_err(),
        "injected read error surfaces from the worker pool"
    );
    assert_eq!(c.live_objects(), live_before, "spill not leaked");
    assert_eq!(c.total_blocks(), blocks_before);
    // With the failpoint consumed, the same parallel plan succeeds.
    let plan = spmm_plan_parallel(&a, &a, 4).unwrap();
    assert!(plan.out_nnz() > 0);
}

/// Kernel-level errors still surface cleanly from worker threads.
#[test]
fn parallel_spmm_convenience_matches_dense_reference() {
    let (n1, n2, n3) = (32, 32, 32);
    let c = ctx(512);
    let a = SparseMatrix::from_triplets(&c, n1, n2, MatrixLayout::Square, &band(n1, n2, 3), None)
        .unwrap();
    let b = SparseMatrix::from_triplets(&c, n2, n3, MatrixLayout::Square, &band(n2, n3, 4), None)
        .unwrap();
    let (t, _) = spmm_parallel(&a, &b, 4, None).unwrap();
    let ad = a.to_rows().unwrap();
    let bd = b.to_rows().unwrap();
    let mut want = vec![0.0; n1 * n3];
    for i in 0..n1 {
        for k in 0..n2 {
            for j in 0..n3 {
                want[i * n3 + j] += ad[i * n2 + k] * bd[k * n3 + j];
            }
        }
    }
    let got = t.to_rows().unwrap();
    for (g, w) in got.iter().zip(&want) {
        assert!((g - w).abs() < 1e-9, "got {g}, want {w}");
    }
}

/// Engine-level wiring: a sparse x dense product through the Riot engine
/// produces identical results (and identical counted I/O in the
/// in-memory regime) at threads {1, 2, 4}.
#[test]
fn engine_sparse_matmul_parity_across_thread_counts() {
    let run = |threads: usize| {
        let mut cfg = EngineConfig::new(EngineKind::Riot);
        cfg.block_size = 512;
        cfg.mem_blocks = 512;
        cfg.threads = threads;
        let s = Session::new(cfg);
        let n = 48;
        let trips = band(n, n, 7);
        let a = s.sparse_matrix(n, n, &trips).unwrap();
        let b = s
            .matrix_from_fn(n, n, MatrixLayout::Square, |i, j| {
                ((i * 5 + j * 3) % 13) as f64 - 6.0
            })
            .unwrap();
        s.drop_caches().unwrap();
        let io0 = s.io_snapshot();
        let (r, c, data) = a.matmul(&b).collect().unwrap();
        assert_eq!((r, c), (n, n));
        (data, s.io_snapshot() - io0)
    };
    let (seq, seq_io) = run(1);
    for threads in [2, 4] {
        let (par, par_io) = run(threads);
        assert_eq!(par, seq, "{threads}-thread engine product diverged");
        assert_eq!(
            (par_io.reads, par_io.writes),
            (seq_io.reads, seq_io.writes),
            "{threads}-thread engine I/O diverged"
        );
    }
}
