//! Parity of the parallel elementwise pipeline against the sequential
//! executor: identical results, identical counted I/O, identical scalar
//! op counts — with only `EngineConfig::threads` changed.

use riot_core::{EngineConfig, EngineKind, Session};
use riot_storage::IoSnapshot;

/// Run the Example-1-shaped elementwise program and report
/// `(result, io-delta, op-delta)`.
fn run_elementwise(kind: EngineKind, threads: usize) -> (Vec<f64>, IoSnapshot, u64) {
    let mut cfg = EngineConfig::new(kind);
    cfg.block_size = 512; // 64 elements per block
    cfg.chunk_elems = 64; // chunk == block: partitions are block-aligned
    cfg.mem_blocks = 512; // in-memory regime, where I/O parity is exact
    cfg.threads = threads;
    let s = Session::new(cfg);
    let n = 64 * 40;
    let x = s
        .vector_from_fn(n, |i| (i as f64 * 0.01).sin() * 20.0)
        .unwrap();
    let y = s
        .vector_from_fn(n, |i| (i as f64 * 0.01).cos() * 20.0)
        .unwrap();
    s.drop_caches().unwrap();
    let io0 = s.io_snapshot();
    let ops0 = s.cpu_ops();
    let d = ((&x - 1.0).square() + (&y - 2.0).square()).sqrt()
        + ((&x - 3.0).square() + (&y - 4.0).square()).sqrt();
    let mask = d.gt(25.0);
    let clamped = d.mask_assign(&mask, 25.0);
    let out = clamped.collect().unwrap();
    (out, s.io_snapshot() - io0, s.cpu_ops() - ops0)
}

#[test]
fn parallel_collect_matches_sequential_exactly() {
    for kind in [EngineKind::Riot, EngineKind::MatNamed] {
        let (seq, seq_io, seq_ops) = run_elementwise(kind, 1);
        for threads in [2, 4] {
            let (par, par_io, par_ops) = run_elementwise(kind, threads);
            assert_eq!(par, seq, "{kind:?}/{threads}: results diverged");
            // Totals and bytes are exact; the sequential/random *classification*
            // is best-effort when worker reads interleave (see
            // riot_storage::stats) — at partition boundaries, adjacent blocks
            // belong to different workers, and whether the global last-block
            // tracker sees them back-to-back is a race.
            assert_eq!(
                (
                    par_io.reads,
                    par_io.writes,
                    par_io.bytes_read,
                    par_io.bytes_written,
                    par_io.syncs
                ),
                (
                    seq_io.reads,
                    seq_io.writes,
                    seq_io.bytes_read,
                    seq_io.bytes_written,
                    seq_io.syncs
                ),
                "{kind:?}/{threads}: I/O diverged"
            );
            assert_eq!(par_ops, seq_ops, "{kind:?}/{threads}: op counts diverged");
        }
    }
}

/// Plans the partitioner cannot prove safe (aggregates, gathers over
/// data-dependent probes with short outputs) fall back to the sequential
/// path and still agree across thread counts.
#[test]
fn unsafe_plans_fall_back_and_agree() {
    let run = |threads: usize| {
        let mut cfg = EngineConfig::new(EngineKind::Riot);
        cfg.block_size = 512;
        cfg.chunk_elems = 64;
        cfg.mem_blocks = 256;
        cfg.threads = threads;
        let s = Session::new(cfg);
        let n = 2000;
        let x = s.vector_from_fn(n, |i| i as f64).unwrap();
        let total = (&x * 2.0).sum().unwrap(); // fixed partition tree
        let idx = s.sample(n, 7).unwrap();
        let picked = (&x + 1.0).index(&idx).collect().unwrap(); // short output
        (total, picked)
    };
    let (t1, p1) = run(1);
    let (t4, p4) = run(4);
    assert_eq!(t1, t4);
    assert_eq!(p1, p4);
}

/// The fixed partition-tree aggregation: `sum()`/`mean()`/`min()`/`max()`
/// over a large float stream are **bit-identical** across
/// `EngineConfig::threads` values — partition boundaries derive from the
/// stream length alone, each partition folds sequentially, and partials
/// combine in partition order. I/O is identical too in the in-memory
/// regime (every element read exactly once either way).
#[test]
fn aggregates_bit_identical_across_thread_counts() {
    let run = |threads: usize| {
        let mut cfg = EngineConfig::new(EngineKind::Riot);
        cfg.block_size = 512;
        cfg.chunk_elems = 64;
        cfg.mem_blocks = 512;
        cfg.threads = threads;
        let s = Session::new(cfg);
        let n = 64 * 100; // 25 fixed partitions of 4 blocks each
        let x = s
            .vector_from_fn(n, |i| (i as f64 * 0.0137).sin() * 3.0 + 0.1)
            .unwrap();
        let e = (&x * 1.5) + 0.25;
        s.drop_caches().unwrap();
        let io0 = s.io_snapshot();
        let out = (
            e.sum().unwrap(),
            e.mean().unwrap(),
            e.min().unwrap(),
            e.max().unwrap(),
        );
        (out, s.io_snapshot() - io0)
    };
    let (seq, seq_io) = run(1);
    for threads in [2, 4] {
        let (par, par_io) = run(threads);
        // Exact bit equality, not approximate: the whole point of the
        // fixed tree.
        assert_eq!(par, seq, "{threads}-thread aggregates diverged");
        // Totals only: the sequential/random *classification* is
        // best-effort when worker reads interleave (see riot_storage::stats).
        assert_eq!(
            (par_io.reads, par_io.writes),
            (seq_io.reads, seq_io.writes),
            "{threads}-thread aggregate I/O diverged"
        );
    }
}

/// Below one partition the classic single sequential fold runs unchanged
/// (small results — and the cross-engine transparency tests built on
/// them — stay exactly stable), and MatNamed agrees with Riot.
#[test]
fn small_aggregates_keep_the_classic_sequential_fold() {
    for kind in [EngineKind::Riot, EngineKind::MatNamed] {
        let mut cfg = EngineConfig::new(kind);
        cfg.block_size = 512;
        cfg.chunk_elems = 64;
        cfg.threads = 4; // even with workers available
        let s = Session::new(cfg);
        let n = 200; // < 4 aligned chunks: single-fold path
        let data: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).cos() * 7.0).collect();
        let x = s.vector_from_fn(n, |i| data[i]).unwrap();
        let mut want = 0.0f64;
        for &v in &data {
            want += v; // the classic left fold, element order
        }
        assert_eq!(x.sum().unwrap(), want, "{kind:?}: small sum changed");
    }
}

/// Gathers are excluded from the parallel path (probes touch blocks
/// shared across partitions, which would break I/O parity under pool
/// pressure); a full-length computed gather therefore falls back to the
/// sequential drain and must still agree across thread counts.
#[test]
fn parallel_gather_pipeline_matches() {
    let run = |threads: usize| {
        let mut cfg = EngineConfig::new(EngineKind::Riot);
        cfg.block_size = 512;
        cfg.chunk_elems = 64;
        cfg.mem_blocks = 512;
        cfg.threads = threads;
        let s = Session::new(cfg);
        let n = 64 * 16;
        let x = s.vector_from_fn(n, |i| (i * 3 % 17) as f64).unwrap();
        // Reverse permutation as a computed index: n, n-1, ..., 1.
        let fwd = s.range(1, n as i64).unwrap();
        let rev = (n as f64 + 1.0) - &fwd;
        let z = x.index(&rev);
        z.collect().unwrap()
    };
    let seq = run(1);
    assert_eq!(seq.len(), 64 * 16);
    assert_eq!(run(4), seq);
}
