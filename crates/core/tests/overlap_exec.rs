//! The exec kernels (dense matmul, sparse SpMV — directory pages
//! included) must observe **identical results and identical counted I/O**
//! through the PR-3 overlapped miss path as through a plain device: the
//! state machine in `riot-storage::pool` changes when the shard lock is
//! held around device transfers, never how many transfers happen.
//!
//! Proven by running each kernel twice — once over a bare `MemBlockDevice`
//! and once over the same device wrapped in a latency-injecting
//! `FailpointDevice` (which widens every in-flight window by a few
//! milliseconds, exercising the LoadInFlight/Evicting states on every
//! miss) — and comparing results and `IoStats` exactly.

use std::sync::Arc;
use std::time::Duration;

use riot_array::{DenseMatrix, DenseVector, MatrixLayout, StorageCtx, TileOrder};
use riot_core::exec::{multiply, spmv, MatMulKernel};
use riot_sparse::SparseMatrix;
use riot_storage::testing::FailpointDevice;
use riot_storage::{BufferPool, MemBlockDevice, PoolConfig, ReplacerKind};

/// A context over a plain mem device, or the same device behind latency
/// failpoints (1 ms per transfer — enough to keep I/O genuinely in flight
/// without slowing the suite).
fn ctx(frames: usize, with_latency: bool) -> Arc<StorageCtx> {
    let inner = Box::new(MemBlockDevice::new(512));
    let device: Box<dyn riot_storage::BlockDevice> = if with_latency {
        let dev = FailpointDevice::new(inner);
        let fp = dev.handle();
        fp.set_read_latency(Duration::from_millis(1));
        fp.set_write_latency(Duration::from_millis(1));
        Box::new(dev)
    } else {
        inner
    };
    StorageCtx::from_pool(BufferPool::new(
        device,
        PoolConfig {
            frames,
            replacer: ReplacerKind::Lru,
            ..PoolConfig::default()
        },
    ))
}

#[test]
fn matmul_counted_io_identical_through_overlapped_path() {
    let n = 24; // 3x3 grid of 8x8 tiles at 512-byte blocks
    let run = |with_latency: bool| {
        let ctx = ctx(6, with_latency); // 6 frames: genuinely out of core
        let a = DenseMatrix::from_fn(
            &ctx,
            n,
            n,
            MatrixLayout::Square,
            TileOrder::RowMajor,
            None,
            |i, j| (i * 31 + j) as f64 * 0.25,
        )
        .unwrap();
        let b = DenseMatrix::from_fn(
            &ctx,
            n,
            n,
            MatrixLayout::Square,
            TileOrder::RowMajor,
            None,
            |i, j| (i as f64) - 0.5 * (j as f64),
        )
        .unwrap();
        ctx.pool().flush_all().unwrap();
        ctx.clear_cache().unwrap();
        let before = ctx.io_snapshot();
        let (t, flops) = multiply(MatMulKernel::SquareTiled, &a, &b, 3 * 64, None).unwrap();
        let io = ctx.io_snapshot() - before;
        let result = t.to_rows().unwrap();
        (result, flops, io.reads, io.writes)
    };

    let (res_plain, flops_plain, r_plain, w_plain) = run(false);
    let (res_slow, flops_slow, r_slow, w_slow) = run(true);
    assert_eq!(res_plain, res_slow, "results diverged under latency");
    assert_eq!(flops_plain, flops_slow);
    assert_eq!(r_plain, r_slow, "matmul read counts diverged");
    assert_eq!(w_plain, w_slow, "matmul write counts diverged");
    assert!(r_plain > 0 && w_plain > 0, "workload must be out of core");
}

#[test]
fn spmv_counted_io_identical_through_overlapped_path() {
    // Sparse directory pages pin through the same overlapped path as data
    // pages; the counted-I/O contract (reads == occupied pages + x blocks)
    // must hold unchanged with every miss held in flight by latency.
    let (rows, cols) = (64, 64);
    let trips: Vec<(usize, usize, f64)> = (0..rows)
        .step_by(3)
        .flat_map(|i| [(i, (i * 7) % cols, 1.5 + i as f64), (i, i, -2.0)])
        .collect();
    let xdata: Vec<f64> = (0..cols).map(|i| (i as f64 * 0.37).sin()).collect();

    let run = |with_latency: bool| {
        let ctx = ctx(8, with_latency);
        let a = SparseMatrix::from_triplets(&ctx, rows, cols, MatrixLayout::Square, &trips, None)
            .unwrap();
        let x = DenseVector::from_slice(&ctx, &xdata, None).unwrap();
        ctx.pool().flush_all().unwrap();
        ctx.clear_cache().unwrap();
        let before = ctx.io_snapshot();
        let (y, _) = spmv(&a, &x, None).unwrap();
        let io = ctx.io_snapshot() - before;
        (y.to_vec().unwrap(), a.occupied_pages(), io.reads, io.writes)
    };

    let (y_plain, pages_plain, r_plain, w_plain) = run(false);
    let (y_slow, pages_slow, r_slow, w_slow) = run(true);
    assert_eq!(y_plain, y_slow, "SpMV results diverged under latency");
    assert_eq!(pages_plain, pages_slow);
    assert_eq!(r_plain, r_slow, "SpMV read counts diverged");
    assert_eq!(w_plain, w_slow, "SpMV write counts diverged");
    assert!(r_plain > 0, "workload must be out of core");
}
