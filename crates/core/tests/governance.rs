//! Governance integration tests: the two pinned invariants (neutrality
//! and leak-free abort) plus one trip test per budgeted resource.
//!
//! Neutrality: a governor engaged with empty limits must not change
//! results, counted I/O, or pool statistics relative to an ungoverned
//! session — the checkpoints exist, but observe only.
//!
//! Leak-free abort: after a cancellation or budget abort at any
//! checkpoint, no frame stays pinned, every temporary extent is freed,
//! and the catalog allocation state is byte-identical to the pre-query
//! snapshot.

use std::time::Duration;

use riot_array::MatrixLayout;
use riot_core::exec::ExecError;
use riot_core::{
    assert_no_leaks, leak_snapshot, CancelToken, EngineConfig, EngineKind, ResourceLimits, Session,
};

/// Small pool so mid-size workloads actually page: 8 KiB blocks,
/// 32-block cap (256 KiB of buffer over megabyte-scale operands).
fn tight(kind: EngineKind) -> EngineConfig {
    EngineConfig {
        mem_blocks: 32,
        ..EngineConfig::new(kind)
    }
}

/// A workload that exercises scans, elementwise pipelines, aggregation,
/// and materialization; returns every scalar it produces.
fn workload(s: &Session) -> Result<Vec<f64>, ExecError> {
    let n = 40_000;
    let x = s.vector_from_fn(n, |i| (i % 97) as f64)?;
    let y = s.vector_from_fn(n, |i| (i % 31) as f64 * 0.5)?;
    let z = x.binary(riot_core::BinOp::Add, &y).sqrt();
    let w = z.binary(riot_core::BinOp::Mul, &x);
    let mut out = vec![w.sum()?, z.mean()?];
    let head = w.index(&s.range(1, 64)?);
    out.extend(head.collect()?);
    Ok(out)
}

/// A settled positive-definite input matrix (built ungoverned or under
/// empty limits; forced so the governed query starts from clean state).
fn spd_input(s: &Session, n: usize) -> riot_core::RMat {
    let m = s
        .matrix_from_fn(n, n, MatrixLayout::Square, |i, j| {
            if i == j {
                100.0 + i as f64
            } else {
                1.0 / (1.0 + (i + j) as f64)
            }
        })
        .unwrap();
    m.nnz().unwrap();
    m
}

/// The governed matrix query: multiply, transpose, factor — the kernels
/// with scratch allocations whose cleanup the leak audit guards.
fn mat_query(s: &Session, m: &riot_core::RMat) -> Result<f64, ExecError> {
    let _ = s;
    let p = m.t().matmul(m);
    let l = p.chol()?;
    let (_, _, data) = l.collect()?;
    Ok(data.iter().sum())
}

#[test]
fn engaged_empty_limits_is_bit_for_bit_neutral() {
    for kind in EngineKind::all() {
        let plain = Session::new(tight(kind));
        let base = workload(&plain).unwrap();
        let base_io = plain.io_snapshot();
        let base_pool = plain.pool_stats();

        let gov = Session::with_limits(tight(kind), ResourceLimits::none());
        let got = workload(&gov).unwrap();
        let got_io = gov.io_snapshot();
        let got_pool = gov.pool_stats();

        assert_eq!(base, got, "{kind:?}: governed results diverged");
        assert_eq!(base_io, got_io, "{kind:?}: governed I/O diverged");
        assert_eq!(
            base_pool, got_pool,
            "{kind:?}: governed pool stats diverged"
        );
    }
}

#[test]
fn read_budget_trips_and_leaks_nothing() {
    let s = Session::new(tight(EngineKind::Riot));
    // Build inputs ungoverned so only the query is budgeted.
    let x = s.vector_from_fn(60_000, |i| i as f64).unwrap();
    let snap = leak_snapshot(&s);
    s.set_limits(ResourceLimits::none().with_max_reads(4));
    let err = x.sqrt().sum().unwrap_err();
    match err {
        ExecError::BudgetExceeded {
            resource,
            used,
            limit,
        } => {
            assert_eq!(resource, "reads");
            assert_eq!(limit, 4);
            assert!(used > limit, "used {used} <= limit {limit}");
        }
        other => panic!("expected BudgetExceeded, got {other}"),
    }
    s.clear_limits();
    assert_no_leaks(&s, &snap, "read-budget abort");
    // The session still works after the abort.
    assert!(x.sqrt().sum().is_ok());
}

#[test]
fn flop_budget_trips_on_pipeline_drains() {
    let s = Session::new(tight(EngineKind::Riot));
    let x = s.vector_from_fn(30_000, |i| (i % 13) as f64).unwrap();
    let snap = leak_snapshot(&s);
    s.set_limits(ResourceLimits::none().with_max_flops(100));
    let err = x
        .binary_scalar(riot_core::BinOp::Mul, 2.0, false)
        .sum()
        .unwrap_err();
    assert!(
        matches!(
            err,
            ExecError::BudgetExceeded {
                resource: "flops",
                ..
            }
        ),
        "{err}"
    );
    s.clear_limits();
    assert_no_leaks(&s, &snap, "flop-budget abort");
}

#[test]
fn temp_block_budget_trips_on_scratch_allocation() {
    let s = Session::new(tight(EngineKind::Riot));
    // Settled positive-definite input, built ungoverned.
    let m = s
        .matrix_from_fn(48, 48, MatrixLayout::Square, |i, j| {
            if i == j {
                100.0
            } else {
                1.0 / (1.0 + (i + j) as f64)
            }
        })
        .unwrap();
    m.nnz().unwrap();
    let snap = leak_snapshot(&s);
    // The factor's working copy alone needs 48*48*8 B ≈ 18 KiB — more
    // than two 8 KiB blocks — so allocation is refused up front.
    s.set_limits(ResourceLimits::none().with_max_temp_blocks(2));
    // Under Riot `chol` records a node; the collect forces it.
    let err = match m.chol().and_then(|l| l.collect()) {
        Ok(_) => panic!("temp-block budget must refuse the allocation"),
        Err(e) => e,
    };
    assert!(
        matches!(
            err,
            ExecError::BudgetExceeded {
                resource: "temp_blocks",
                ..
            }
        ),
        "{err}"
    );
    s.clear_limits();
    assert_no_leaks(&s, &snap, "temp-block abort");
}

#[test]
fn deadline_trips_and_leaks_nothing() {
    let s = Session::new(tight(EngineKind::Riot));
    let x = s.vector_from_fn(50_000, |i| i as f64).unwrap();
    let snap = leak_snapshot(&s);
    // A deadline that has already passed trips at the first governed
    // checkpoint — no sleeping, no timing sensitivity.
    s.set_limits(ResourceLimits::none().with_deadline(Duration::ZERO));
    let err = x.sqrt().sum().unwrap_err();
    assert!(
        matches!(
            err,
            ExecError::BudgetExceeded {
                resource: "deadline",
                ..
            }
        ),
        "{err}"
    );
    s.clear_limits();
    assert_no_leaks(&s, &snap, "deadline abort");
}

#[test]
fn cancel_token_aborts_from_another_thread_view() {
    let s = Session::new(tight(EngineKind::Riot));
    let x = s.vector_from_fn(50_000, |i| i as f64).unwrap();
    let snap = leak_snapshot(&s);
    s.set_limits(ResourceLimits::none());
    let token: CancelToken = s.cancel_handle();
    // The handle is a detached clone — cancelling through it is exactly
    // what a ctrl-C watcher thread would do.
    token.cancel();
    let err = x.sqrt().sum().unwrap_err();
    assert!(matches!(err, ExecError::Cancelled { .. }), "{err}");
    s.clear_limits();
    assert_no_leaks(&s, &snap, "cancel abort");
    s.reset_cancel();
    assert!(x.sqrt().sum().is_ok());
}

#[test]
fn cancel_at_every_checkpoint_of_matrix_query_leaks_nothing() {
    // Count-mode pass: run once governed (empty limits) to learn the
    // checkpoint count, then re-run cancelling at each k and audit.
    let probe = Session::with_limits(tight(EngineKind::Riot), ResourceLimits::none());
    let pm = spd_input(&probe, 96);
    let seen0 = probe.storage_ctx().governor().checkpoints_seen();
    mat_query(&probe, &pm).unwrap();
    let total = probe.storage_ctx().governor().checkpoints_seen() - seen0;
    assert!(total > 0, "matrix query must cross checkpoints");

    for k in 1..=total {
        let s = Session::with_limits(tight(EngineKind::Riot), ResourceLimits::none());
        let m = spd_input(&s, 96);
        let gov = s.storage_ctx().governor().clone();
        // Snapshot *after* the inputs exist: the invariant is that an
        // aborted query restores the catalog to its pre-query state.
        let snap = leak_snapshot(&s);
        let base = gov.checkpoints_seen();
        gov.set_cancel_at(base + k);
        let res = mat_query(&s, &m);
        s.clear_limits();
        match res {
            Err(e) => {
                assert!(e.is_governance_abort(), "checkpoint {k}: {e}");
                s.reset_cancel();
                assert_no_leaks(&s, &snap, &format!("cancel at checkpoint {k}/{total}"));
            }
            Ok(_) => panic!("cancel at checkpoint {k}/{total} did not abort"),
        }
    }
}

#[test]
fn factor_scratch_freed_on_abort_under_all_engines() {
    for kind in EngineKind::all() {
        let s = Session::new(tight(kind));
        let m = s
            .matrix_from_fn(40, 40, MatrixLayout::Square, |i, j| {
                if i == j {
                    50.0
                } else {
                    1.0 / (1.0 + (i + j) as f64)
                }
            })
            .unwrap();
        // Force the input to settle before the governed query.
        m.nnz().unwrap();
        let snap = leak_snapshot(&s);
        s.set_limits(ResourceLimits::none());
        s.cancel_handle().cancel();
        // Eager engines factor inside `chol`; deferred engines at the
        // collect. Either way the pending cancel aborts in a kernel.
        let res = m.chol().and_then(|l| l.collect());
        let err = match res {
            Ok(_) => panic!("{kind:?}: pending cancel must abort the factorization"),
            Err(e) => e,
        };
        assert!(err.is_governance_abort(), "{kind:?}: {err}");
        s.clear_limits();
        s.reset_cancel();
        assert_no_leaks(&s, &snap, &format!("{kind:?} factor abort"));
    }
}

#[test]
fn with_limits_constructor_engages_and_reports() {
    let limits = ResourceLimits::none()
        .with_max_reads(1_000_000)
        .with_deadline(Duration::from_secs(3600));
    let s = Session::with_limits(EngineConfig::new(EngineKind::Riot), limits);
    assert_eq!(s.limits(), limits);
    // Generous limits: queries succeed.
    let x = s.vector_from_fn(1024, |i| i as f64).unwrap();
    assert_eq!(x.sum().unwrap(), (0..1024).sum::<usize>() as f64);
    s.clear_limits();
    assert_eq!(s.limits(), ResourceLimits::none());
}
