//! Plan-driven prefetch through the exec kernels: every kernel declares
//! its next window to the pool, and the declaration must change **when**
//! device reads happen, never **how many** — results and counted I/O are
//! bit-for-bit the no-prefetch run's, with the prefetch counters proving
//! the background path actually carried traffic.
//!
//! Pools here are sized to hold each kernel's working window (the regime
//! the parity contract is stated for); `PoolStats::prefetch_wasted == 0`
//! pins that no background read was thrown away.

use std::sync::Arc;
use std::time::Duration;

use riot_array::{DenseMatrix, DenseVector, MatrixLayout, StorageCtx, TileOrder};
use riot_core::exec::{dmspm, matmul_bnlj, matmul_tiled, spmdm, spmm, spmv, sptranspose};
use riot_sparse::SparseMatrix;
use riot_storage::testing::FailpointDevice;
use riot_storage::{BufferPool, IoSnapshot, MemBlockDevice, PoolConfig, PoolStats, ReplacerKind};

/// Prefetch-off pools run the bare device; prefetch-on pools inject 1 ms
/// of read latency, which both exercises the overlapped path for real and
/// guarantees the background workers get scheduled while the pin path
/// sleeps (on a single-core test box the workers would otherwise lose
/// every race, making `prefetch_issued` flaky). Latency never changes
/// counted I/O — `overlap_exec.rs` pins that independently.
fn ctx(frames: usize, prefetch_depth: usize) -> Arc<StorageCtx> {
    let inner = Box::new(MemBlockDevice::new(512));
    let device: Box<dyn riot_storage::BlockDevice> = if prefetch_depth > 0 {
        let dev = FailpointDevice::new(inner);
        dev.handle().set_read_latency(Duration::from_millis(1));
        Box::new(dev)
    } else {
        inner
    };
    StorageCtx::from_pool(BufferPool::new(
        device,
        PoolConfig {
            frames,
            replacer: ReplacerKind::Lru,
            prefetch_depth,
            ..PoolConfig::default()
        },
    ))
}

/// Run `work` over a cold cache at the given prefetch depth; returns the
/// result vector, the I/O delta, and the pool counters.
fn measure<R, F>(frames: usize, depth: usize, work: F) -> (R, IoSnapshot, PoolStats)
where
    F: FnOnce(&Arc<StorageCtx>) -> R,
{
    let c = ctx(frames, depth);
    let out = work(&c);
    c.pool().wait_prefetch_idle();
    c.pool().flush_all().unwrap();
    (out, c.io_snapshot(), c.pool_stats_snapshot())
}

/// Helper trait-ish shim: StorageCtx has no pool_stats wrapper; go
/// through the pool directly.
trait PoolStatsSnapshot {
    fn pool_stats_snapshot(&self) -> PoolStats;
}

impl PoolStatsSnapshot for StorageCtx {
    fn pool_stats_snapshot(&self) -> PoolStats {
        self.pool().pool_stats()
    }
}

fn band(rows: usize, cols: usize) -> Vec<(usize, usize, f64)> {
    (0..rows)
        .flat_map(|r| {
            [(r, r % cols), (r, (r + 5) % cols)]
                .into_iter()
                .map(move |(i, j)| (i, j, (i * cols + j) as f64 * 0.125 + 1.0))
        })
        .collect()
}

/// Assert prefetch-on matches prefetch-off bit-for-bit, and that the
/// prefetcher genuinely carried reads (issued > 0, wasted == 0).
fn assert_parity<R: PartialEq + std::fmt::Debug>(
    kernel: &str,
    off: (R, IoSnapshot, PoolStats),
    on: (R, IoSnapshot, PoolStats),
) {
    assert_eq!(off.0, on.0, "{kernel}: results diverged under prefetch");
    assert_eq!(
        (off.1.reads, off.1.writes),
        (on.1.reads, on.1.writes),
        "{kernel}: prefetch changed I/O totals"
    );
    assert_eq!(
        off.2.prefetch_issued, 0,
        "{kernel}: depth-0 pool prefetched"
    );
    assert!(
        on.2.prefetch_issued > 0,
        "{kernel}: the declared windows never reached the workers"
    );
    assert_eq!(
        on.2.prefetch_wasted, 0,
        "{kernel}: a windowed kernel must not waste prefetches"
    );
    assert_eq!(
        on.2.prefetch_issued + on.2.misses,
        off.2.misses,
        "{kernel}: reads must only move off the pin path, never duplicate"
    );
}

#[test]
fn matmul_kernels_prefetch_parity() {
    let n = 32; // 4x4 grid of 8x8 tiles
    let tiled = |c: &Arc<StorageCtx>| {
        let a = DenseMatrix::from_fn(
            c,
            n,
            n,
            MatrixLayout::Square,
            TileOrder::RowMajor,
            None,
            |i, j| (i * 17 + j) as f64 * 0.5,
        )
        .unwrap();
        let b = DenseMatrix::from_fn(
            c,
            n,
            n,
            MatrixLayout::Square,
            TileOrder::RowMajor,
            None,
            |i, j| (i as f64) - 0.25 * (j as f64),
        )
        .unwrap();
        c.pool().flush_all().unwrap();
        c.clear_cache().unwrap();
        let (t, flops) = matmul_tiled(&a, &b, 3 * 4 * 64, None).unwrap();
        (t.to_rows().unwrap(), flops)
    };
    assert_parity("matmul_tiled", measure(64, 0, tiled), measure(64, 4, tiled));

    let bnlj = |c: &Arc<StorageCtx>| {
        let a = DenseMatrix::from_fn(
            c,
            n,
            n,
            MatrixLayout::RowMajor,
            TileOrder::RowMajor,
            None,
            |i, j| (i + 2 * j) as f64,
        )
        .unwrap();
        let b = DenseMatrix::from_fn(
            c,
            n,
            n,
            MatrixLayout::ColMajor,
            TileOrder::ColMajor,
            None,
            |i, j| (i * j % 7) as f64,
        )
        .unwrap();
        c.pool().flush_all().unwrap();
        c.clear_cache().unwrap();
        let (t, flops) = matmul_bnlj(&a, &b, 8 * 2 * n, None).unwrap();
        (t.to_rows().unwrap(), flops)
    };
    assert_parity("matmul_bnlj", measure(96, 0, bnlj), measure(96, 4, bnlj));
}

#[test]
fn sparse_kernels_prefetch_parity() {
    let (n1, n2, n3) = (40, 32, 24);
    let trips = band(n1, n2);

    let run_spmv = |c: &Arc<StorageCtx>| {
        let a = SparseMatrix::from_triplets(c, n1, n2, MatrixLayout::Square, &trips, None).unwrap();
        let x = DenseVector::from_slice(
            c,
            &(0..n2).map(|i| (i as f64 * 0.3).sin()).collect::<Vec<_>>(),
            None,
        )
        .unwrap();
        c.pool().flush_all().unwrap();
        c.clear_cache().unwrap();
        let (y, flops) = spmv(&a, &x, None).unwrap();
        (y.to_vec().unwrap(), flops)
    };
    assert_parity("spmv", measure(64, 0, run_spmv), measure(64, 4, run_spmv));

    let run_spmdm = |c: &Arc<StorageCtx>| {
        let a = SparseMatrix::from_triplets(c, n1, n2, MatrixLayout::Square, &trips, None).unwrap();
        let b = DenseMatrix::from_fn(
            c,
            n2,
            n3,
            MatrixLayout::Square,
            TileOrder::RowMajor,
            None,
            |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0,
        )
        .unwrap();
        c.pool().flush_all().unwrap();
        c.clear_cache().unwrap();
        let (t, flops) = spmdm(&a, &b, None).unwrap();
        (t.to_rows().unwrap(), flops)
    };
    assert_parity(
        "spmdm",
        measure(128, 0, run_spmdm),
        measure(128, 4, run_spmdm),
    );

    let run_dmspm = |c: &Arc<StorageCtx>| {
        let a = DenseMatrix::from_fn(
            c,
            n3,
            n1,
            MatrixLayout::Square,
            TileOrder::RowMajor,
            None,
            |i, j| ((i * 5 + j) % 13) as f64 - 6.0,
        )
        .unwrap();
        let b = SparseMatrix::from_triplets(c, n1, n2, MatrixLayout::Square, &trips, None).unwrap();
        c.pool().flush_all().unwrap();
        c.clear_cache().unwrap();
        let (t, flops) = dmspm(&a, &b, None).unwrap();
        (t.to_rows().unwrap(), flops)
    };
    assert_parity(
        "dmspm",
        measure(128, 0, run_dmspm),
        measure(128, 4, run_dmspm),
    );
}

#[test]
fn spmm_and_transpose_prefetch_parity() {
    let n = 32;
    let run_spmm = |c: &Arc<StorageCtx>| {
        let a =
            SparseMatrix::from_triplets(c, n, n, MatrixLayout::Square, &band(n, n), None).unwrap();
        let b =
            SparseMatrix::from_triplets(c, n, n, MatrixLayout::Square, &band(n, n), None).unwrap();
        c.pool().flush_all().unwrap();
        c.clear_cache().unwrap();
        let (t, flops) = spmm(&a, &b, None).unwrap();
        (t.to_rows().unwrap(), t.nnz(), flops)
    };
    assert_parity("spmm", measure(256, 0, run_spmm), measure(256, 4, run_spmm));

    let run_t = |c: &Arc<StorageCtx>| {
        let a =
            SparseMatrix::from_triplets(c, n, n, MatrixLayout::Square, &band(n, n), None).unwrap();
        c.pool().flush_all().unwrap();
        c.clear_cache().unwrap();
        let (t, moved) = sptranspose(&a, None).unwrap();
        (t.to_rows().unwrap(), moved)
    };
    assert_parity("sptranspose", measure(64, 0, run_t), measure(64, 4, run_t));
}

/// The elementwise pipeline's `VecScan` declares its next chunk: engine
/// collect parity with `EngineConfig::prefetch_depth` on vs off.
#[test]
fn pipeline_collect_prefetch_parity() {
    use riot_core::{EngineConfig, EngineKind, Session};
    let run = |depth: usize| {
        let mut cfg = EngineConfig::new(EngineKind::Riot);
        cfg.block_size = 512;
        cfg.chunk_elems = 64;
        cfg.mem_blocks = 256;
        cfg.prefetch_depth = depth;
        let s = Session::new(cfg);
        let n = 64 * 30;
        let x = s.vector_from_fn(n, |i| (i as f64 * 0.01).sin()).unwrap();
        let y = s.vector_from_fn(n, |i| (i as f64 * 0.02).cos()).unwrap();
        s.drop_caches().unwrap();
        let io0 = s.io_snapshot();
        let d = ((&x - 1.0).square() + (&y - 2.0).square()).sqrt();
        let out = d.collect().unwrap();
        (out, s.io_snapshot() - io0)
    };
    let (off, off_io) = run(0);
    let (on, on_io) = run(4);
    assert_eq!(off, on, "pipeline results diverged under prefetch");
    assert_eq!(
        (off_io.reads, off_io.writes),
        (on_io.reads, on_io.writes),
        "pipeline prefetch changed I/O totals"
    );
}
