//! Property tests for the sparse kernels and the optimizer's sparse
//! rules: every kernel in the `{sparse, dense} x {sparse, dense}` product
//! table agrees with the dense reference across random shapes/densities,
//! `t(t(A)) == A` through the native transpose, and the density-threshold
//! rewrites (multiply *and* transpose) preserve semantics against the
//! dense evaluation oracle.

use std::sync::Arc;

use proptest::prelude::*;
use riot_array::{DenseVector, MatrixLayout, StorageCtx, TileOrder};
use riot_core::exec::{dmspm, dmv, spmdm, spmm, spmv};
use riot_core::{evaluate, optimize, ExprGraph, MemSources, OptConfig, Value};
use riot_sparse::SparseMatrix;

fn ctx() -> Arc<StorageCtx> {
    StorageCtx::new_mem(512, 256)
}

/// `(rows, cols, triplets)` with shapes in 1..48 and density up to ~0.4.
fn sparse_case() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f64)>)> {
    (1usize..48, 1usize..48, 0usize..700, any::<u64>()).prop_map(|(rows, cols, raw, seed)| {
        let target = raw.min(rows * cols * 2 / 5);
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let trips: Vec<(usize, usize, f64)> = (0..target)
            .map(|_| {
                let r = (next() % rows as u64) as usize;
                let c = (next() % cols as u64) as usize;
                let v = (next() % 900) as f64 / 100.0 - 4.5;
                (r, c, v)
            })
            .collect();
        (rows, cols, trips)
    })
}

fn scatter(rows: usize, cols: usize, trips: &[(usize, usize, f64)]) -> Vec<f64> {
    let mut out = vec![0.0; rows * cols];
    for &(r, c, v) in trips {
        out[r * cols + c] += v;
    }
    out
}

fn close(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn spmv_agrees_with_dense_kernel(case in sparse_case()) {
        let (rows, cols, trips) = case;
        let c = ctx();
        let sp = SparseMatrix::from_triplets(&c, rows, cols, MatrixLayout::Square, &trips, None)
            .unwrap();
        let dense = sp.to_dense(TileOrder::RowMajor, None).unwrap();
        let xdata: Vec<f64> = (0..cols).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let x = DenseVector::from_slice(&c, &xdata, None).unwrap();
        let (ys, sflops) = spmv(&sp, &x, None).unwrap();
        let (yd, _) = dmv(&dense, &x, None).unwrap();
        prop_assert!(close(&ys.to_vec().unwrap(), &yd.to_vec().unwrap()));
        prop_assert_eq!(sflops, sp.nnz());
    }

    #[test]
    fn spmdm_agrees_with_reference(case in sparse_case()) {
        let (n1, n2, trips) = case;
        let n3 = 5;
        let c = ctx();
        let sp = SparseMatrix::from_triplets(&c, n1, n2, MatrixLayout::Square, &trips, None)
            .unwrap();
        let bdata: Vec<f64> = (0..n2 * n3).map(|k| ((k * 3) % 7) as f64 - 3.0).collect();
        let b = riot_array::DenseMatrix::from_rows(
            &c, n2, n3, &bdata, MatrixLayout::Square, TileOrder::RowMajor, None,
        ).unwrap();
        let (t, _) = spmdm(&sp, &b, None).unwrap();
        let ad = scatter(n1, n2, &trips);
        let mut want = vec![0.0; n1 * n3];
        for i in 0..n1 {
            for k in 0..n2 {
                for j in 0..n3 {
                    want[i * n3 + j] += ad[i * n2 + k] * bdata[k * n3 + j];
                }
            }
        }
        prop_assert!(close(&t.to_rows().unwrap(), &want));
    }

    #[test]
    fn transpose_roundtrips(case in sparse_case()) {
        // t(t(A)) == A through the native kernel, and t(A) itself matches
        // the scattered reference transposed.
        let (rows, cols, trips) = case;
        let c = ctx();
        let sp = SparseMatrix::from_triplets(&c, rows, cols, MatrixLayout::Square, &trips, None)
            .unwrap();
        let t = sp.transpose(None).unwrap();
        prop_assert_eq!(t.shape(), (cols, rows));
        prop_assert_eq!(t.nnz(), sp.nnz());
        let ad = scatter(rows, cols, &trips);
        let mut want_t = vec![0.0; rows * cols];
        for r in 0..rows {
            for cc in 0..cols {
                want_t[cc * rows + r] = ad[r * cols + cc];
            }
        }
        prop_assert!(close(&t.to_rows().unwrap(), &want_t));
        let back = t.transpose(None).unwrap();
        prop_assert_eq!(back.shape(), (rows, cols));
        prop_assert!(close(&back.to_rows().unwrap(), &ad));
    }

    #[test]
    fn product_parity_across_all_format_combinations(
        a_case in sparse_case(),
        b_raw in 0usize..700,
        b_seed in any::<u64>(),
        n3 in 1usize..24,
    ) {
        // A %*% B computed by all four kernels — spmm, spmdm, dmspm, and
        // the dense reference — agrees whatever the operand formats.
        let (n1, n2, ta) = a_case;
        let tb = {
            let target = b_raw.min(n2 * n3 * 2 / 5);
            let mut s = b_seed | 1;
            let mut next = move || { s ^= s << 13; s ^= s >> 7; s ^= s << 17; s };
            (0..target).map(|_| {
                let r = (next() % n2 as u64) as usize;
                let c = (next() % n3 as u64) as usize;
                (r, c, (next() % 900) as f64 / 100.0 - 4.5)
            }).collect::<Vec<_>>()
        };
        let c = ctx();
        let sa = SparseMatrix::from_triplets(&c, n1, n2, MatrixLayout::Square, &ta, None).unwrap();
        let sb = SparseMatrix::from_triplets(&c, n2, n3, MatrixLayout::Square, &tb, None).unwrap();
        let da = sa.to_dense(TileOrder::RowMajor, None).unwrap();
        let db = sb.to_dense(TileOrder::RowMajor, None).unwrap();

        let ad = scatter(n1, n2, &ta);
        let bd = scatter(n2, n3, &tb);
        let mut want = vec![0.0; n1 * n3];
        for i in 0..n1 {
            for k in 0..n2 {
                for j in 0..n3 {
                    want[i * n3 + j] += ad[i * n2 + k] * bd[k * n3 + j];
                }
            }
        }

        let (ss, _) = spmm(&sa, &sb, None).unwrap();       // sparse x sparse
        let (sd, _) = spmdm(&sa, &db, None).unwrap();      // sparse x dense
        let (ds, _) = dmspm(&da, &sb, None).unwrap();      // dense  x sparse
        prop_assert!(close(&ss.to_rows().unwrap(), &want));
        prop_assert!(close(&sd.to_rows().unwrap(), &want));
        prop_assert!(close(&ds.to_rows().unwrap(), &want));
    }

    #[test]
    fn transpose_rewrites_preserve_semantics(case in sparse_case(), threshold in 0.0f64..1.2) {
        // Whichever side of the threshold t(A) lands on (native sparse
        // transpose or densify-then-transpose), the optimized DAG must
        // evaluate to the same value as the unoptimized one.
        let (rows, cols, trips) = case;
        let mut g = ExprGraph::new();
        let mut src = MemSources::new();
        let (a_ref, nnz) = src.add_sparse(rows, cols, &trips);
        let a = g.sp_mat_source(a_ref, rows, cols, nnz);
        let t = g.transpose(a).unwrap();
        let want = evaluate(&g, t, &src).unwrap();
        let cfg = OptConfig { sparse_threshold: threshold, ..OptConfig::default() };
        let (opt, stats) = optimize(&mut g, t, &cfg);
        let got = evaluate(&g, opt, &src).unwrap();
        let (Value::Matrix { data: dg, .. }, Value::Matrix { data: dw, .. }) = (&got, &want)
        else { panic!("matrix values expected") };
        prop_assert!(close(dg, dw));
        // Exactly one physical decision was made for the transpose.
        prop_assert_eq!(stats.sparse_transposes + stats.transpose_densified, 1);
    }

    #[test]
    fn sparse_rewrites_preserve_semantics(case in sparse_case(), threshold in 0.0f64..1.2) {
        // Whatever kernel the density threshold picks, the optimized DAG
        // must evaluate to the same value as the unoptimized one under
        // the dense oracle.
        let (rows, cols, trips) = case;
        let mut g = ExprGraph::new();
        let mut src = MemSources::new();
        let (a_ref, nnz) = src.add_sparse(rows, cols, &trips);
        let bdata: Vec<f64> = (0..cols * 3).map(|k| (k % 5) as f64 - 2.0).collect();
        let b_ref = src.add_matrix(cols, 3, bdata);
        let a = g.sp_mat_source(a_ref, rows, cols, nnz);
        let b = g.mat_source(b_ref, cols, 3);
        let prod = g.matmul(a, b).unwrap();
        let want = evaluate(&g, prod, &src).unwrap();
        let cfg = OptConfig { sparse_threshold: threshold, ..OptConfig::default() };
        let (opt, stats) = optimize(&mut g, prod, &cfg);
        let got = evaluate(&g, opt, &src).unwrap();
        let (Value::Matrix { data: dg, .. }, Value::Matrix { data: dw, .. }) = (&got, &want)
        else { panic!("matrix values expected") };
        prop_assert!(close(dg, dw));
        // Exactly one decision was made for the sparse operand.
        prop_assert_eq!(stats.sparse_kernels + stats.sparse_densified, 1);
    }
}
