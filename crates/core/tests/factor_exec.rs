//! End-to-end factorization tests: `chol` and `solve` through the
//! Session API across all four engines, thread-count invariance of both
//! results and counted I/O, and the typed non-positive-definite error at
//! every engine's forcing point.

use riot_array::MatrixLayout;
use riot_core::exec::ExecError;
use riot_core::{EngineConfig, EngineKind, Session};

const N: usize = 40;
const M: usize = 3;

/// Deterministic symmetric positive definite test matrix.
fn spd(i: usize, j: usize) -> f64 {
    let (a, b) = (i.min(j), i.max(j));
    if a == b {
        N as f64 + 2.0 + (a % 5) as f64
    } else {
        (((a * 31 + b * 17) % 13) as f64 - 6.0) / 13.0
    }
}

/// Known solution for `solve(a, a %*% x) == x`.
fn xs(i: usize, j: usize) -> f64 {
    ((i * M + j) * 7 % 11) as f64 - 5.0
}

fn session(kind: EngineKind, threads: usize) -> Session {
    let mut cfg = EngineConfig::new(kind);
    cfg.block_size = 512;
    cfg.chunk_elems = 64;
    cfg.mem_blocks = 24; // 3 * 64 elems: panels well below the matrix size
    cfg.threads = threads;
    Session::new(cfg)
}

fn assert_close(got: &[f64], want: &[f64], tol: f64, what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (k, (g, w)) in got.iter().zip(want).enumerate() {
        assert!((g - w).abs() < tol, "{what} elem {k}: got {g}, want {w}");
    }
}

#[test]
fn chol_reconstruction_holds_on_every_engine() {
    // L %*% t(L) ≈ a, with L's strict upper triangle exactly zero.
    for kind in EngineKind::all() {
        let s = session(kind, 1);
        let a = s.matrix_from_fn(N, N, MatrixLayout::Square, spd).unwrap();
        let l = a.chol().unwrap();
        let (r, c, rec) = l.matmul(&l.t()).collect().unwrap();
        assert_eq!((r, c), (N, N), "{kind:?}");
        let want: Vec<f64> = (0..N * N).map(|k| spd(k / N, k % N)).collect();
        assert_close(&rec, &want, 1e-9, &format!("{kind:?} reconstruction"));
        let (_, _, lv) = l.collect().unwrap();
        for i in 0..N {
            for j in i + 1..N {
                assert_eq!(lv[i * N + j], 0.0, "{kind:?}: upper ({i},{j})");
            }
        }
    }
}

#[test]
fn solve_recovers_known_solution_on_every_engine() {
    // solve(a, a %*% x) ≈ x.
    for kind in EngineKind::all() {
        let s = session(kind, 1);
        let a = s.matrix_from_fn(N, N, MatrixLayout::Square, spd).unwrap();
        let x = s.matrix_from_fn(N, M, MatrixLayout::Square, xs).unwrap();
        let b = a.matmul(&x);
        let (_, _, got) = a.solve(&b).unwrap().collect().unwrap();
        let want: Vec<f64> = (0..N * M).map(|k| xs(k / M, k % M)).collect();
        assert_close(&got, &want, 1e-7, &format!("{kind:?} solve"));
    }
}

#[test]
fn thread_count_changes_nothing_but_wall_clock() {
    // Riot at threads {1, 2, 4}: bit-identical factor, solution, and
    // counted I/O — the parallel schedule is the sequential schedule.
    // b = a %*% x is built host-side so the counted window holds only the
    // factorization and solve (matmul sizes its panels per-thread).
    let bval = |i: usize, j: usize| (0..N).map(|k| spd(i, k) * xs(k, j)).sum::<f64>();
    let run = |threads: usize| {
        let s = session(EngineKind::Riot, threads);
        let a = s.matrix_from_fn(N, N, MatrixLayout::Square, spd).unwrap();
        let b = s.matrix_from_fn(N, M, MatrixLayout::Square, bval).unwrap();
        s.drop_caches().unwrap();
        let before = s.io_snapshot();
        let (_, _, l) = a.chol().unwrap().collect().unwrap();
        let (_, _, sol) = a.solve(&b).unwrap().collect().unwrap();
        let io = s.io_snapshot() - before;
        (l, sol, io.reads, io.writes)
    };
    let seq = run(1);
    for threads in [2, 4] {
        let par = run(threads);
        assert_eq!(par.0, seq.0, "{threads}-thread factor diverged");
        assert_eq!(par.1, seq.1, "{threads}-thread solution diverged");
        assert_eq!(par.2, seq.2, "{threads}-thread reads diverged");
        assert_eq!(par.3, seq.3, "{threads}-thread writes diverged");
    }
}

#[test]
fn non_positive_definite_input_errors_on_every_engine() {
    // An indefinite matrix must surface the typed error at the engine's
    // forcing point — deferred engines at collect, eager engines at the
    // call — and never silent NaNs.
    for kind in EngineKind::all() {
        let s = session(kind, 1);
        let a = s
            .matrix_from_fn(N, N, MatrixLayout::Square, |i, j| {
                if i == 9 && j == 9 {
                    -spd(i, j)
                } else {
                    spd(i, j)
                }
            })
            .unwrap();
        let result = a.chol().and_then(|l| l.collect());
        match result {
            Err(ExecError::NotPositiveDefinite { pivot, .. }) => {
                assert_eq!(pivot, 9, "{kind:?}: wrong pivot reported");
            }
            Err(other) => panic!("{kind:?}: expected NotPositiveDefinite, got {other}"),
            Ok(_) => panic!("{kind:?}: chol of an indefinite matrix succeeded"),
        }
    }
}

#[test]
fn degenerate_shapes_work_or_error_cleanly() {
    for kind in EngineKind::all() {
        let s = session(kind, 1);
        // 1x1: the smallest factorization and solve.
        let a = s
            .matrix_from_fn(1, 1, MatrixLayout::Square, |_, _| 9.0)
            .unwrap();
        let (_, _, l) = a.chol().unwrap().collect().unwrap();
        assert_eq!(l, vec![3.0], "{kind:?}: 1x1 chol");
        let b = s
            .matrix_from_fn(1, 1, MatrixLayout::Square, |_, _| 18.0)
            .unwrap();
        let (_, _, x) = a.solve(&b).unwrap().collect().unwrap();
        assert_eq!(x, vec![2.0], "{kind:?}: 1x1 solve");

        // Ragged: dims not a multiple of the 8-wide tiles.
        let n = 13;
        let a = s.matrix_from_fn(n, n, MatrixLayout::Square, spd).unwrap();
        let l = a.chol().unwrap();
        let (_, _, rec) = l.matmul(&l.t()).collect().unwrap();
        let want: Vec<f64> = (0..n * n).map(|k| spd(k / n, k % n)).collect();
        assert_close(&rec, &want, 1e-9, &format!("{kind:?} ragged"));

        // Non-square chol and mismatched solve dims: typed shape errors.
        let rect = s
            .matrix_from_fn(4, 6, MatrixLayout::Square, |i, j| (i + j) as f64)
            .unwrap();
        let rect_chol = rect.chol().and_then(|l| l.collect());
        assert!(rect_chol.is_err(), "{kind:?}: chol of 4x6 must fail");
        let bad_rhs = s
            .matrix_from_fn(5, 2, MatrixLayout::Square, |_, _| 1.0)
            .unwrap();
        let bad = a.solve(&bad_rhs).and_then(|x| x.collect());
        assert!(bad.is_err(), "{kind:?}: solve with 13x13 vs 5x2 must fail");
    }
}

#[test]
fn normal_equations_rewrite_fires_and_solves() {
    // solve(crossprod(x), crossprod(x, y)) — least squares by normal
    // equations. The optimizer recognizes the Gram-matrix coefficient and
    // counts the certification; the answer matches the dense reference.
    let rows = 30;
    let cols = 5;
    let s = session(EngineKind::Riot, 1);
    let x = s
        .matrix_from_fn(rows, cols, MatrixLayout::Square, |i, j| {
            if j == 0 {
                1.0
            } else {
                ((i * (j + 2)) % 7) as f64 - 3.0
            }
        })
        .unwrap();
    let y = s
        .matrix_from_fn(rows, 1, MatrixLayout::Square, |i, _| 2.0 + (i % 5) as f64)
        .unwrap();
    let beta = x.t().matmul(&x).solve(&x.t().matmul(&y)).unwrap();
    let (br, bc, bv) = beta.collect().unwrap();
    assert_eq!((br, bc), (cols, 1));
    assert_eq!(
        s.last_opt_stats().normal_eq_solves,
        1,
        "Gram-matrix coefficient not recognized"
    );
    // Residual must be orthogonal to the columns of x: t(x) %*% (y - x b)
    // is zero for the least-squares solution.
    let xv: Vec<f64> = (0..rows * cols)
        .map(|k| {
            let (i, j) = (k / cols, k % cols);
            if j == 0 {
                1.0
            } else {
                ((i * (j + 2)) % 7) as f64 - 3.0
            }
        })
        .collect();
    let yv: Vec<f64> = (0..rows).map(|i| 2.0 + (i % 5) as f64).collect();
    for j in 0..cols {
        let mut dot = 0.0;
        for i in 0..rows {
            let fitted: f64 = (0..cols).map(|k| xv[i * cols + k] * bv[k]).sum();
            dot += xv[i * cols + j] * (yv[i] - fitted);
        }
        assert!(dot.abs() < 1e-7, "residual not orthogonal: col {j}: {dot}");
    }
}
