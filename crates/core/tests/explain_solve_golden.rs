//! Golden-file EXPLAIN for the normal-equations solve: the plan for
//! `solve(crossprod(x), crossprod(x, y))`, the optimizer's certification
//! that the coefficient is a Gram matrix (so the Cholesky-backed solve is
//! safe and no inverse is ever materialized), and the deterministic
//! counted profile are pinned to a committed file.
//!
//! Regenerate after an intentional change with:
//! `RIOT_UPDATE_GOLDEN=1 cargo test -p riot-core --test explain_solve_golden`

use riot_array::MatrixLayout;
use riot_core::{EngineConfig, EngineKind, Session};

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/explain_solve.txt"
);

fn fixed_program() -> String {
    let mut cfg = EngineConfig::new(EngineKind::Riot);
    cfg.block_size = 512;
    cfg.chunk_elems = 64;
    cfg.mem_blocks = 24;
    let s = Session::new(cfg);

    let rows = 64;
    let cols = 8;
    let x = s
        .matrix_from_fn(rows, cols, MatrixLayout::Square, |i, j| {
            if j == 0 {
                1.0
            } else {
                // Multipliers 3..=9 are all nonzero mod 11, so no column
                // is constant and the Gram matrix stays positive definite.
                ((i * (j + 2)) % 11) as f64 - 5.0
            }
        })
        .unwrap();
    let y = s
        .matrix_from_fn(rows, 1, MatrixLayout::Square, |i, _| 2.0 + (i % 5) as f64)
        .unwrap();
    // solve(crossprod(x), crossprod(x, y)) — least squares without an inverse.
    let beta = x.t().matmul(&x).solve(&x.t().matmul(&y)).unwrap();

    let mut out = String::new();
    out.push_str("== EXPLAIN (logical plan after optimization) ==\n");
    out.push_str(&beta.explain());

    s.drop_caches().unwrap();
    let (_, profile) = s.profile(|| beta.collect().unwrap());
    out.push_str("\n== REWRITES ==\n");
    out.push_str(&format!(
        "normal_eq_solves: {}\n",
        s.last_opt_stats().normal_eq_solves
    ));
    out.push_str("== PROFILE (deterministic counters) ==\n");
    out.push_str(&profile.render_counts());
    out
}

#[test]
fn normal_equations_explain_matches_golden() {
    let got = fixed_program();
    if std::env::var_os("RIOT_UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(GOLDEN)
        .expect("golden file missing; run with RIOT_UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        got, want,
        "EXPLAIN/profile drifted from {GOLDEN}; if intentional, regenerate \
         with RIOT_UPDATE_GOLDEN=1"
    );
}
