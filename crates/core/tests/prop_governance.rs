//! Property tests for governance: random pipelines at threads ∈ {1, 4},
//! with a random cancel point injected.
//!
//! * Neutrality holds for arbitrary workloads: a governor engaged with
//!   empty limits never changes the result.
//! * A cancel injected at an arbitrary checkpoint either aborts with a
//!   typed governance error or (past the last checkpoint) the query
//!   completes — and in both cases the catalog ends byte-identical to
//!   its pre-query state once handles drop, with zero pinned frames.
//! * After `reset_cancel`, the identical query succeeds with the same
//!   result an untouched session produces — an abort poisons nothing.

use proptest::prelude::*;
use riot_core::{
    assert_no_leaks, leak_snapshot, BinOp, EngineConfig, EngineKind, RVec, ResourceLimits, Session,
};

#[derive(Debug, Clone, Copy)]
enum Step {
    AddScalar(i8),
    MulScalar(i8),
    Sqrt,
    Abs,
    AddSelf,
    Gather,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => any::<i8>().prop_map(Step::AddScalar),
        3 => any::<i8>().prop_map(Step::MulScalar),
        2 => Just(Step::Sqrt),
        2 => Just(Step::Abs),
        2 => Just(Step::AddSelf),
        1 => Just(Step::Gather),
    ]
}

/// Apply `steps` to a fresh deferred pipeline over `base` and force it.
fn run_steps(s: &Session, base: &RVec, steps: &[Step]) -> Result<f64, riot_core::exec::ExecError> {
    let mut v = base.binary_scalar(BinOp::Add, 0.0, false);
    for st in steps {
        v = match st {
            Step::AddScalar(c) => v.binary_scalar(BinOp::Add, *c as f64, false),
            Step::MulScalar(c) => v.binary_scalar(BinOp::Mul, *c as f64, false),
            Step::Sqrt => v.abs().sqrt(),
            Step::Abs => v.abs(),
            Step::AddSelf => v.binary(BinOp::Add, base),
            Step::Gather => v.index(&s.range(1, (base.len() / 2).max(2) as i64)?),
        };
    }
    v.sum()
}

fn tight(kind: EngineKind, threads: usize) -> EngineConfig {
    EngineConfig {
        mem_blocks: 16,
        threads,
        ..EngineConfig::new(kind)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn governed_empty_limits_neutral_for_random_pipelines(
        steps in proptest::collection::vec(step_strategy(), 1..6),
        len in 2_000usize..12_000,
    ) {
        for threads in [1usize, 4] {
            let plain = Session::new(tight(EngineKind::Riot, threads));
            let px = plain.vector_from_fn(len, |i| (i % 89) as f64).unwrap();
            let want = run_steps(&plain, &px, &steps).unwrap();

            let gov = Session::with_limits(
                tight(EngineKind::Riot, threads),
                ResourceLimits::none(),
            );
            let gx = gov.vector_from_fn(len, |i| (i % 89) as f64).unwrap();
            let got = run_steps(&gov, &gx, &steps).unwrap();
            prop_assert_eq!(
                want.to_bits(),
                got.to_bits(),
                "threads={}: governed result diverged",
                threads
            );
        }
    }

    #[test]
    fn cancel_at_random_checkpoint_aborts_cleanly(
        steps in proptest::collection::vec(step_strategy(), 1..6),
        len in 2_000usize..12_000,
        cancel_at in 1u64..40,
    ) {
        for threads in [1usize, 4] {
            let s = Session::with_limits(
                tight(EngineKind::Riot, threads),
                ResourceLimits::none(),
            );
            let x = s.vector_from_fn(len, |i| (i % 89) as f64).unwrap();
            // The reference result, computed before the cancel arms.
            let want = run_steps(&s, &x, &steps).unwrap();
            let snap = leak_snapshot(&s);

            let gov = s.storage_ctx().governor().clone();
            let base = gov.checkpoints_seen();
            gov.set_cancel_at(base + cancel_at);
            match run_steps(&s, &x, &steps) {
                Err(e) => {
                    prop_assert!(
                        e.is_governance_abort(),
                        "threads={}: non-governance error {}", threads, e
                    );
                    s.reset_cancel();
                    assert_no_leaks(&s, &snap, "random cancel");
                }
                Ok(v) => {
                    // Cancel point beyond the query's checkpoint count.
                    prop_assert_eq!(want.to_bits(), v.to_bits());
                    s.reset_cancel();
                }
            }
            // The session is unpoisoned: the query runs again, same answer.
            let again = run_steps(&s, &x, &steps).unwrap();
            prop_assert_eq!(want.to_bits(), again.to_bits(),
                "threads={}: post-abort rerun diverged", threads);
            assert_no_leaks(&s, &snap, "post-rerun");
        }
    }
}

/// Workers observe a cancel raised mid-drain from a real second thread
/// (not a pre-armed counter): proves propagation out of scoped workers.
#[test]
fn live_cancel_from_watcher_thread_aborts_parallel_workers() {
    for threads in [1usize, 4] {
        let s = Session::with_limits(tight(EngineKind::Riot, threads), ResourceLimits::none());
        let x = s.vector_from_fn(200_000, |i| (i % 97) as f64).unwrap();
        let snap = leak_snapshot(&s);
        let token = s.cancel_handle();
        let watcher = std::thread::spawn(move || {
            // Land somewhere inside the drain (or after it — both legal).
            std::thread::sleep(std::time::Duration::from_micros(200));
            token.cancel();
        });
        let res = x.abs().sqrt().binary(BinOp::Add, &x).sum();
        watcher.join().unwrap();
        if let Err(e) = res {
            assert!(e.is_governance_abort(), "threads={threads}: {e}");
        }
        s.reset_cancel();
        assert_no_leaks(&s, &snap, "watcher cancel");
        assert!(x.sum().is_ok(), "threads={threads}: session poisoned");
    }
}
