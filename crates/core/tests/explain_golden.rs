//! Golden-file EXPLAIN check: the rendered logical plan and the
//! deterministic (count-only) profile tree for a fixed program are pinned
//! to a committed file, so any change to plan shape, rewrite behavior, or
//! counted I/O shows up as a reviewable text diff.
//!
//! Regenerate after an intentional change with:
//! `RIOT_UPDATE_GOLDEN=1 cargo test -p riot-core --test explain_golden`

use riot_core::{EngineConfig, EngineKind, Session};

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/explain.txt");

fn fixed_program() -> String {
    let mut cfg = EngineConfig::new(EngineKind::Riot);
    cfg.block_size = 512;
    cfg.chunk_elems = 64;
    cfg.mem_blocks = 24;
    let s = Session::new(cfg);

    let n = 64 * 10;
    let x = s.vector_from_fn(n, |i| i as f64 * 0.5).unwrap();
    let y = s.vector_from_fn(n, |i| (n - i) as f64).unwrap();
    let d = ((&x - 1.0).square() + (&y - 2.0).square()).sqrt();
    let mask = d.gt(100.0);
    let clamped = d.mask_assign(&mask, 100.0);
    let idx = s.range(1, 10).unwrap();
    let z = clamped.index(&idx);

    let mut out = String::new();
    out.push_str("== EXPLAIN (logical plan after optimization) ==\n");
    out.push_str(&z.explain());

    s.drop_caches().unwrap();
    let (_, profile) = s.profile(|| z.collect().unwrap());
    out.push_str("\n== PROFILE (deterministic counters) ==\n");
    out.push_str(&profile.render_counts());
    out
}

#[test]
fn explain_and_profile_match_golden() {
    let got = fixed_program();
    if std::env::var_os("RIOT_UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(GOLDEN)
        .expect("golden file missing; run with RIOT_UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        got, want,
        "EXPLAIN/profile drifted from {GOLDEN}; if intentional, regenerate \
         with RIOT_UPDATE_GOLDEN=1"
    );
}

#[test]
fn eager_engines_explain_as_materialized() {
    let s = Session::with_engine(EngineKind::PlainR);
    let x = s.vector_from_fn(10, |i| i as f64).unwrap();
    let y = &x + 1.0;
    assert!(y.explain().contains("<materialized>"), "{}", y.explain());
}
