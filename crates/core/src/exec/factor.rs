//! Out-of-core tiled factorizations: Cholesky and triangular solve.
//!
//! RIOT's pitch is I/O-efficient *numerical computing*, and factorization
//! is the hardest pure I/O-scheduling problem the paper's home turf
//! offers: unlike a product, every panel step of a right-looking Cholesky
//! depends on the panels factored before it, so the schedule is a DAG of
//! POTRF → TRSM → SYRK/GEMM tile steps rather than an embarrassingly
//! parallel grid. The kernels here extend `matmul_tiled`'s rectangle
//! discipline to that DAG:
//!
//! * work proceeds panel-by-panel with `p = √(M/3)` (tile-aligned), so
//!   any step holds at most three `p × p` panels in scratch;
//! * every step *declares its next access window* through
//!   [`prefetch_rect`] before blocking on the current one (the PR-5
//!   discipline: prefetch changes *when* reads happen, never *how many*);
//! * the trailing update fans its disjoint output panels over a work
//!   queue of threads with bit-identical results at every thread count.
//!
//! The panel side is deliberately **independent of the thread count**:
//! the trailing update accumulates into storage panel-by-panel, so the
//! panel partition fixes the floating-point grouping. Sizing `p` from
//! memory alone keeps the schedule — and therefore both the bits of the
//! result and the counted I/O — identical whether one worker or eight
//! execute it (each worker owns its own 3-panel scratch; callers that
//! need a hard transient-memory cap can pass `mem_elems / threads`).

use riot_array::matrix::DenseMatrix;
use riot_array::{MatrixLayout, TileOrder};

use super::matmul::{prefetch_rect, read_rect, run_parallel, write_rect};
use super::{ExecError, ExecResult};
use crate::expr::ExprError;
use crate::shape::Shape;

/// In-place lower Cholesky of the leading `t x t` panel of `buf`
/// (row-major, stride `t`). On success the strict upper triangle is
/// zeroed. `panel` and `row0` locate the panel for error reporting.
fn potrf(buf: &mut [f64], t: usize, panel: usize, row0: usize) -> ExecResult<u64> {
    let mut flops = 0u64;
    for j in 0..t {
        let mut d = buf[j * t + j];
        for k in 0..j {
            d -= buf[j * t + k] * buf[j * t + k];
        }
        flops += j as u64 + 1;
        // A non-finite pivot (NaN already in the input, or overflow) and a
        // non-positive pivot both mean "not positive definite" — erroring
        // here is what keeps NaNs from silently flowing downstream.
        if !d.is_finite() || d <= 0.0 {
            return Err(ExecError::NotPositiveDefinite {
                tile: panel,
                pivot: row0 + j,
            });
        }
        let d = d.sqrt();
        buf[j * t + j] = d;
        for i in j + 1..t {
            let mut s = buf[i * t + j];
            for k in 0..j {
                s -= buf[i * t + k] * buf[j * t + k];
            }
            buf[i * t + j] = s / d;
            flops += j as u64 + 1;
        }
        for i in j + 1..t {
            buf[j * t + i] = 0.0;
        }
    }
    Ok(flops)
}

/// Solve `X · Lᵀ = A` in place: `a` is `rows x t` row-major, `l` is the
/// already-factored lower-triangular `t x t` diagonal panel.
fn trsm_right_lt(a: &mut [f64], rows: usize, l: &[f64], t: usize) -> u64 {
    for r in 0..rows {
        for j in 0..t {
            let mut s = a[r * t + j];
            for k in 0..j {
                s -= a[r * t + k] * l[j * t + k];
            }
            a[r * t + j] = s / l[j * t + j];
        }
    }
    (rows * t * (t + 1) / 2) as u64
}

/// `C -= Li · Ljᵀ`: `c` is `pi x pj`, `li` is `pi x pk`, `lj` is
/// `pj x pk`, all row-major.
fn gemm_nt_sub(c: &mut [f64], li: &[f64], lj: &[f64], pi: usize, pj: usize, pk: usize) -> u64 {
    for i in 0..pi {
        let lrow = &li[i * pk..i * pk + pk];
        for j in 0..pj {
            let jrow = &lj[j * pk..j * pk + pk];
            let mut s = 0.0;
            for (a, b) in lrow.iter().zip(jrow) {
                s += a * b;
            }
            c[i * pj + j] -= s;
        }
    }
    (pi * pj * pk) as u64
}

/// Solve `L · X = B` in place: `b` is `t x cols` row-major, `l` is the
/// lower-triangular `t x t` diagonal panel.
fn trsm_forward(b: &mut [f64], cols: usize, l: &[f64], t: usize) -> u64 {
    for r in 0..t {
        for k in 0..r {
            let lrk = l[r * t + k];
            for c in 0..cols {
                b[r * cols + c] -= lrk * b[k * cols + c];
            }
        }
        let d = l[r * t + r];
        for c in 0..cols {
            b[r * cols + c] /= d;
        }
    }
    (t * (t + 1) / 2 * cols) as u64
}

/// Solve `Lᵀ · X = B` in place (backward substitution over the same
/// lower-triangular panel).
fn trsm_backward(b: &mut [f64], cols: usize, l: &[f64], t: usize) -> u64 {
    for r in (0..t).rev() {
        for k in r + 1..t {
            let lkr = l[k * t + r];
            for c in 0..cols {
                b[r * cols + c] -= lkr * b[k * cols + c];
            }
        }
        let d = l[r * t + r];
        for c in 0..cols {
            b[r * cols + c] /= d;
        }
    }
    (t * (t + 1) / 2 * cols) as u64
}

/// `C -= A · B`: `c` is `pi x pj`, `a` is `pi x pk`, `b` is `pk x pj`.
fn gemm_nn_sub(c: &mut [f64], a: &[f64], b: &[f64], pi: usize, pj: usize, pk: usize) -> u64 {
    for i in 0..pi {
        for k in 0..pk {
            let aik = a[i * pk + k];
            let brow = &b[k * pj..k * pj + pj];
            let crow = &mut c[i * pj..i * pj + pj];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv -= aik * bv;
            }
        }
    }
    (pi * pj * pk) as u64
}

/// `C -= Aᵀ · B`: `c` is `pi x pj`, `a` is `pk x pi` (transposed use),
/// `b` is `pk x pj`.
fn gemm_tn_sub(c: &mut [f64], a: &[f64], b: &[f64], pi: usize, pj: usize, pk: usize) -> u64 {
    for k in 0..pk {
        for i in 0..pi {
            let aki = a[k * pi + i];
            let brow = &b[k * pj..k * pj + pj];
            let crow = &mut c[i * pj..i * pj + pj];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv -= aki * bv;
            }
        }
    }
    (pi * pj * pk) as u64
}

fn expect_square(m: &DenseMatrix) -> ExecResult<usize> {
    if m.rows() != m.cols() || m.rows() == 0 {
        return Err(ExecError::Expr(ExprError::Expected {
            what: "non-empty square matrix",
            got: Shape::Matrix(m.rows(), m.cols()),
        }));
    }
    Ok(m.rows())
}

/// Panel side for the factorization schedule: `√(M/3)` rounded down to a
/// whole number of tiles, at least one tile — three panels is the working
/// set of every step (the TRSM and trailing-update steps each touch two
/// operand panels plus one output panel).
fn panel_side(mem_elems: usize, tile_side: usize) -> usize {
    (((mem_elems as f64 / 3.0).sqrt() as usize) / tile_side * tile_side).max(tile_side)
}

/// Out-of-core tiled Cholesky factorization: returns the lower-triangular
/// `L` with `L · Lᵀ = A` (strict upper triangle exactly zero) and the
/// flop count.
///
/// Right-looking panel schedule over `p = √(M/3)` square panels:
/// for each diagonal step `k` — POTRF the diagonal panel, TRSM the panel
/// column below it (parallel over rows), then rank-`p` update of the
/// trailing submatrix (parallel over its disjoint panels). Only the lower
/// triangle of `a` is ever read, so a symmetric input needs no transpose
/// pass. Inputs that are not positive definite surface
/// [`ExecError::NotPositiveDefinite`] with the failing panel and global
/// pivot index — NaNs never propagate silently.
pub fn chol_tiled(
    a: &DenseMatrix,
    mem_elems: usize,
    name: Option<&str>,
) -> ExecResult<(DenseMatrix, u64)> {
    chol_tiled_parallel(a, mem_elems, 1, name)
}

/// [`chol_tiled`] with the TRSM and trailing-update steps of each panel
/// distributed over `threads` workers. The panel partition is fixed by
/// `mem_elems` alone, so results and counted I/O are bit-identical at
/// every thread count.
pub fn chol_tiled_parallel(
    a: &DenseMatrix,
    mem_elems: usize,
    threads: usize,
    name: Option<&str>,
) -> ExecResult<(DenseMatrix, u64)> {
    let n = expect_square(a)?;
    let ctx = a.ctx();
    let out = DenseMatrix::create(ctx, n, n, MatrixLayout::Square, TileOrder::RowMajor, name)?;
    let (tile_r, tile_c) = out.tile_dims();
    let p = panel_side(mem_elems, tile_r.max(tile_c));
    let nb = n.div_ceil(p);
    let pw = |i: usize| p.min(n - i * p);
    let threads = threads.max(1);
    let mut flops = 0u64;

    // The factor loops run inside one closure so that *any* error — a
    // POTRF pivot failure, a device fault, or a governance abort at any
    // checkpoint — frees the half-factored working copy before the error
    // propagates (the leak-free-abort invariant).
    let factor = || -> ExecResult<u64> {
        let mut flops = 0u64;
        // Working copy: lower triangle of `a` (diagonal panels whole —
        // their upper entries are scratch until POTRF zeroes them), zeros
        // above.
        {
            let mut buf = vec![0.0; p * p];
            for i in 0..nb {
                ctx.governor().checkpoint("factor.chol.copy")?;
                let pi = pw(i);
                for j in 0..nb {
                    let pj = pw(j);
                    if j <= i {
                        if j < i {
                            // Declare the next copy window before blocking.
                            prefetch_rect(a, i * p, (j + 1) * p, pi, pw(j + 1));
                        }
                        read_rect(a, i * p, j * p, pi, pj, &mut buf)?;
                    } else {
                        buf[..pi * pj].fill(0.0);
                    }
                    write_rect(&out, i * p, j * p, pi, pj, &buf)?;
                }
            }
        }

        let mut diag = vec![0.0; p * p];
        for k in 0..nb {
            ctx.governor().checkpoint("factor.chol.panel")?;
            let (k0, pk) = (k * p, pw(k));
            read_rect(&out, k0, k0, pk, pk, &mut diag)?;
            let f = potrf(&mut diag, pk, k, k0)?;
            flops += f;
            ctx.governor().add_flops(f);
            write_rect(&out, k0, k0, pk, pk, &diag)?;
            if k + 1 < nb {
                // The TRSM column is the next window: declare it while the
                // diagonal write-back settles.
                prefetch_rect(&out, k0 + pk, k0, n - (k0 + pk), pk);
            }

            // TRSM: rows below the diagonal panel, disjoint outputs.
            let rows: Vec<usize> = (k + 1..nb).collect();
            flops += run_parallel(
                threads.min(rows.len().max(1)),
                &rows,
                || vec![0.0; p * p],
                |&i, buf| {
                    ctx.governor().checkpoint("factor.chol.trsm")?;
                    let pi = pw(i);
                    // Next window for this row panel: its own
                    // trailing-update read of panel (i, k+1) — already
                    // valid data.
                    if k < i {
                        prefetch_rect(&out, i * p, (k + 1) * p, pi, pw(k + 1));
                    }
                    read_rect(&out, i * p, k0, pi, pk, buf)?;
                    let f = trsm_right_lt(buf, pi, &diag, pk);
                    write_rect(&out, i * p, k0, pi, pk, buf)?;
                    ctx.governor().add_flops(f);
                    Ok(f)
                },
            )?;

            // Trailing update: every lower-triangle panel of the trailing
            // submatrix gets `A(i,j) -= L(i,k) · L(j,k)ᵀ`. Outputs are
            // disjoint, so the fan-out is bit-identical to the sequential
            // order at any thread count.
            let cells: Vec<(usize, usize)> = (k + 1..nb)
                .flat_map(|i| (k + 1..=i).map(move |j| (i, j)))
                .collect();
            flops += run_parallel(
                threads.min(cells.len().max(1)),
                &cells,
                || (vec![0.0; p * p], vec![0.0; p * p], vec![0.0; p * p]),
                |&(i, j), (li, lj, cij)| {
                    ctx.governor().checkpoint("factor.chol.update")?;
                    let (pi, pj) = (pw(i), pw(j));
                    // Next window: the output panel this step modifies.
                    prefetch_rect(&out, i * p, j * p, pi, pj);
                    read_rect(&out, i * p, k0, pi, pk, li)?;
                    let mut f = 0u64;
                    if i == j {
                        lj[..pi * pk].copy_from_slice(&li[..pi * pk]);
                    } else {
                        read_rect(&out, j * p, k0, pj, pk, lj)?;
                    }
                    read_rect(&out, i * p, j * p, pi, pj, cij)?;
                    f += gemm_nt_sub(cij, li, lj, pi, pj, pk);
                    write_rect(&out, i * p, j * p, pi, pj, cij)?;
                    ctx.governor().add_flops(f);
                    Ok(f)
                },
            )?;

            if k + 1 < nb {
                // Declare the next diagonal panel before looping back.
                prefetch_rect(&out, (k + 1) * p, (k + 1) * p, pw(k + 1), pw(k + 1));
            }
        }
        Ok(flops)
    };
    match factor() {
        Ok(f) => {
            flops += f;
            Ok((out, flops))
        }
        Err(e) => {
            // The half-factored working copy is dead on error.
            let _ = out.free();
            Err(e)
        }
    }
}

/// Blocked triangular solve of `L · Lᵀ · X = B` for a lower-triangular
/// `L` (as produced by [`chol_tiled`]): forward substitution then
/// backward substitution, panel by panel. Returns `(X, flops)`.
///
/// Parallelism fans over `B`'s column strips — each strip's solve is an
/// independent recurrence over the row panels, so outputs are disjoint
/// and results identical at every thread count (the strip partition is
/// fixed by `mem_elems` alone, like the Cholesky panels).
pub fn tri_solve_parallel(
    l: &DenseMatrix,
    b: &DenseMatrix,
    mem_elems: usize,
    threads: usize,
    name: Option<&str>,
) -> ExecResult<(DenseMatrix, u64)> {
    let n = expect_square(l)?;
    if b.rows() != n || b.cols() == 0 {
        return Err(ExecError::Expr(ExprError::MatMulDims {
            lhs: Shape::Matrix(n, n),
            rhs: Shape::Matrix(b.rows(), b.cols()),
        }));
    }
    let m = b.cols();
    let ctx = l.ctx();
    let x = DenseMatrix::create(ctx, n, m, MatrixLayout::Square, TileOrder::RowMajor, name)?;
    let (tile_r, tile_c) = x.tile_dims();
    let p = panel_side(mem_elems, tile_r.max(tile_c));
    let nb = n.div_ceil(p);
    let mb = m.div_ceil(p);
    let pw = |i: usize| p.min(n - i * p);
    let qw = |j: usize| p.min(m - j * p);

    // As in the factorization, the solve loops run inside one closure so
    // any error — device fault or governance abort — frees the working
    // copy `x` before propagating.
    let solve = || -> ExecResult<u64> {
        // X starts as a copy of B; each strip then solves in place.
        {
            let mut buf = vec![0.0; p * p];
            for i in 0..nb {
                ctx.governor().checkpoint("factor.solve.copy")?;
                let pi = pw(i);
                for j in 0..mb {
                    let qj = qw(j);
                    if j + 1 < mb {
                        prefetch_rect(b, i * p, (j + 1) * p, pi, qw(j + 1));
                    }
                    read_rect(b, i * p, j * p, pi, qj, &mut buf)?;
                    write_rect(&x, i * p, j * p, pi, qj, &buf)?;
                }
            }
        }

        let strips: Vec<usize> = (0..mb).collect();
        run_parallel(
            threads.max(1).min(mb),
            &strips,
            || (vec![0.0; p * p], vec![0.0; p * p], vec![0.0; p * p]),
            |&s, (lbuf, xb, xk)| {
                let (s0, qs) = (s * p, qw(s));
                let mut f = 0u64;
                // Forward: L · Y = B over row panels top-down.
                for i in 0..nb {
                    ctx.governor().checkpoint("factor.solve.panel")?;
                    let (i0, pi) = (i * p, pw(i));
                    read_rect(&x, i0, s0, pi, qs, xb)?;
                    for k in 0..i {
                        let (_k0, pk) = (k * p, pw(k));
                        // Declare the next L panel of this recurrence row.
                        prefetch_rect(l, i0, (k + 1) * p, pi, pw(k + 1));
                        read_rect(l, i0, k * p, pi, pk, lbuf)?;
                        read_rect(&x, k * p, s0, pk, qs, xk)?;
                        f += gemm_nn_sub(xb, lbuf, xk, pi, qs, pk);
                    }
                    read_rect(l, i0, i0, pi, pi, lbuf)?;
                    f += trsm_forward(xb, qs, lbuf, pi);
                    write_rect(&x, i0, s0, pi, qs, xb)?;
                }
                // Backward: Lᵀ · X = Y over row panels bottom-up.
                for i in (0..nb).rev() {
                    ctx.governor().checkpoint("factor.solve.panel")?;
                    let (i0, pi) = (i * p, pw(i));
                    read_rect(&x, i0, s0, pi, qs, xb)?;
                    for k in i + 1..nb {
                        let pk = pw(k);
                        if k + 1 < nb {
                            prefetch_rect(l, (k + 1) * p, i0, pw(k + 1), pi);
                        }
                        // L(k,i) used transposed: Lᵀ(i,k) = L(k,i)ᵀ.
                        read_rect(l, k * p, i0, pk, pi, lbuf)?;
                        read_rect(&x, k * p, s0, pk, qs, xk)?;
                        f += gemm_tn_sub(xb, lbuf, xk, pi, qs, pk);
                    }
                    read_rect(l, i0, i0, pi, pi, lbuf)?;
                    f += trsm_backward(xb, qs, lbuf, pi);
                    write_rect(&x, i0, s0, pi, qs, xb)?;
                }
                ctx.governor().add_flops(f);
                Ok(f)
            },
        )
    };
    match solve() {
        Ok(flops) => Ok((x, flops)),
        Err(e) => {
            let _ = x.free();
            Err(e)
        }
    }
}

/// `solve(a, b)` for symmetric positive definite `a`: factor `a = L·Lᵀ`
/// out of core, then triangular-solve both halves. The factor is a
/// transient object, freed before returning. Returns `(X, flops)`.
pub fn cholesky_solve(
    a: &DenseMatrix,
    b: &DenseMatrix,
    mem_elems: usize,
    threads: usize,
    name: Option<&str>,
) -> ExecResult<(DenseMatrix, u64)> {
    let (l, f1) = chol_tiled_parallel(a, mem_elems, threads, None)?;
    let solved = tri_solve_parallel(&l, b, mem_elems, threads, name);
    l.free()?;
    let (x, f2) = solved?;
    Ok((x, f1 + f2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use riot_array::StorageCtx;
    use std::sync::Arc;

    /// 512-byte blocks: 64 elements, 8x8 square tiles.
    fn ctx(frames: usize) -> Arc<StorageCtx> {
        StorageCtx::new_mem(512, frames)
    }

    fn mk(
        ctx: &Arc<StorageCtx>,
        n: usize,
        m: usize,
        f: impl FnMut(usize, usize) -> f64,
    ) -> DenseMatrix {
        DenseMatrix::from_fn(
            ctx,
            n,
            m,
            MatrixLayout::Square,
            TileOrder::RowMajor,
            None,
            f,
        )
        .unwrap()
    }

    /// A deterministic symmetric positive definite matrix: diagonally
    /// dominant with bounded off-diagonal entries.
    fn spd(i: usize, j: usize, n: usize) -> f64 {
        if i == j {
            n as f64 + 2.0 + (i % 5) as f64
        } else {
            (((i * 31 + j * 17) % 13) as f64 - 6.0) / 13.0
        }
    }

    fn spd_sym(i: usize, j: usize, n: usize) -> f64 {
        let (a, b) = (i.min(j), i.max(j));
        spd(a, b, n)
    }

    /// Plain in-memory reference Cholesky (row-major lower factor).
    fn reference_chol(a: &[f64], n: usize) -> Vec<f64> {
        let mut l = vec![0.0; n * n];
        for j in 0..n {
            let mut d = a[j * n + j];
            for k in 0..j {
                d -= l[j * n + k] * l[j * n + k];
            }
            let d = d.sqrt();
            l[j * n + j] = d;
            for i in j + 1..n {
                let mut s = a[i * n + j];
                for k in 0..j {
                    s -= l[i * n + k] * l[j * n + k];
                }
                l[i * n + j] = s / d;
            }
        }
        l
    }

    fn assert_close(got: &[f64], want: &[f64], tol: f64) {
        assert_eq!(got.len(), want.len());
        for (idx, (g, w)) in got.iter().zip(want).enumerate() {
            assert!((g - w).abs() < tol, "elem {idx}: got {g}, want {w}");
        }
    }

    #[test]
    fn chol_reconstructs_input() {
        for n in [1usize, 7, 8, 20, 33] {
            let c = ctx(64);
            let a = mk(&c, n, n, |i, j| spd_sym(i, j, n));
            let (l, _) = chol_tiled(&a, 3 * 64, None).unwrap();
            let lv = l.to_rows().unwrap();
            // Strict upper triangle exactly zero.
            for i in 0..n {
                for j in i + 1..n {
                    assert_eq!(lv[i * n + j], 0.0, "upper ({i},{j}) nonzero");
                }
            }
            // L·Lᵀ ≈ A.
            for i in 0..n {
                for j in 0..n {
                    let mut s = 0.0;
                    for k in 0..n {
                        s += lv[i * n + k] * lv[j * n + k];
                    }
                    assert!(
                        (s - spd_sym(i, j, n)).abs() < 1e-9,
                        "n={n} ({i},{j}): {s} vs {}",
                        spd_sym(i, j, n)
                    );
                }
            }
        }
    }

    #[test]
    fn chol_matches_reference_bitwise_on_tile_aligned_input() {
        // Panels of exactly one tile (p = 8): the tiled schedule performs
        // the same operations as the reference per element group.
        let n = 16;
        let c = ctx(64);
        let av: Vec<f64> = (0..n * n).map(|k| spd_sym(k / n, k % n, n)).collect();
        let a = mk(&c, n, n, |i, j| av[i * n + j]);
        let (l, _) = chol_tiled(&a, 3 * 64, None).unwrap();
        assert_close(&l.to_rows().unwrap(), &reference_chol(&av, n), 1e-10);
    }

    #[test]
    fn chol_reads_only_lower_triangle() {
        // Garbage in the strict upper triangle must not affect the factor.
        let n = 20;
        let c = ctx(64);
        let clean = mk(&c, n, n, |i, j| spd_sym(i, j, n));
        let dirty = mk(
            &c,
            n,
            n,
            |i, j| {
                if j > i {
                    f64::NAN
                } else {
                    spd_sym(i, j, n)
                }
            },
        );
        let (l1, f1) = chol_tiled(&clean, 3 * 64, None).unwrap();
        let (l2, f2) = chol_tiled(&dirty, 3 * 64, None).unwrap();
        assert_eq!(l1.to_rows().unwrap(), l2.to_rows().unwrap());
        assert_eq!(f1, f2);
    }

    #[test]
    fn non_positive_definite_is_a_typed_error() {
        let n = 12;
        let c = ctx(64);
        // Negate one diagonal entry: the factorization must fail at that
        // pivot, not emit NaNs.
        let bad = 10usize;
        let a = mk(&c, n, n, |i, j| {
            let v = spd_sym(i, j, n);
            if i == bad && j == bad {
                -v
            } else {
                v
            }
        });
        match chol_tiled(&a, 3 * 64, None) {
            Err(ExecError::NotPositiveDefinite { tile, pivot }) => {
                assert_eq!(pivot, bad);
                assert_eq!(tile, bad / 8, "panel index of the failing pivot");
            }
            Err(other) => panic!("expected NotPositiveDefinite, got {other}"),
            Ok(_) => panic!("factorization of an indefinite matrix succeeded"),
        }
        // NaN poisoning is caught the same way, at the first poisoned pivot.
        let a = mk(&c, n, n, |i, j| {
            if (i, j) == (3, 3) {
                f64::NAN
            } else {
                spd_sym(i, j, n)
            }
        });
        match chol_tiled(&a, 3 * 64, None) {
            Err(ExecError::NotPositiveDefinite { pivot, .. }) => assert_eq!(pivot, 3),
            Err(other) => panic!("expected NotPositiveDefinite, got {other}"),
            Ok(_) => panic!("factorization of a NaN-poisoned matrix succeeded"),
        }
    }

    #[test]
    fn chol_rejects_degenerate_shapes() {
        let c = ctx(64);
        let rect = mk(&c, 4, 6, |i, j| (i + j) as f64);
        assert!(matches!(
            chol_tiled(&rect, 3 * 64, None),
            Err(ExecError::Expr(ExprError::Expected { .. }))
        ));
    }

    #[test]
    fn solve_recovers_known_solution() {
        for (n, m) in [(1usize, 1usize), (8, 3), (20, 5), (33, 9)] {
            let c = ctx(64);
            let a = mk(&c, n, n, |i, j| spd_sym(i, j, n));
            let xs: Vec<f64> = (0..n * m).map(|k| ((k * 7) % 11) as f64 - 5.0).collect();
            // b = a %*% x, computed densely.
            let av: Vec<f64> = (0..n * n).map(|k| spd_sym(k / n, k % n, n)).collect();
            let mut bv = vec![0.0; n * m];
            for i in 0..n {
                for k in 0..n {
                    for j in 0..m {
                        bv[i * m + j] += av[i * n + k] * xs[k * m + j];
                    }
                }
            }
            let b = mk(&c, n, m, |i, j| bv[i * m + j]);
            let (x, _) = cholesky_solve(&a, &b, 3 * 64, 1, None).unwrap();
            assert_close(&x.to_rows().unwrap(), &xs, 1e-7);
        }
    }

    #[test]
    fn solve_rejects_mismatched_rhs() {
        let c = ctx(64);
        let a = mk(&c, 8, 8, |i, j| spd_sym(i, j, 8));
        let b = mk(&c, 9, 2, |_, _| 1.0);
        assert!(matches!(
            cholesky_solve(&a, &b, 3 * 64, 1, None),
            Err(ExecError::Expr(ExprError::MatMulDims { .. }))
        ));
    }

    #[test]
    fn parallel_matches_sequential_results_and_io() {
        // In-memory regime: parallel schedules must be bit-identical to
        // sequential in results, flops, reads, and writes.
        let n = 40; // 5x5 panels at p = 8
        let run = |threads: usize| {
            let c = StorageCtx::new_mem_sharded(512, 256, 8);
            let a = mk(&c, n, n, |i, j| spd_sym(i, j, n));
            let xs: Vec<f64> = (0..n * 3).map(|k| ((k * 5) % 9) as f64 - 4.0).collect();
            let av: Vec<f64> = (0..n * n).map(|k| spd_sym(k / n, k % n, n)).collect();
            let mut bv = vec![0.0; n * 3];
            for i in 0..n {
                for k in 0..n {
                    for j in 0..3 {
                        bv[i * 3 + j] += av[i * n + k] * xs[k * 3 + j];
                    }
                }
            }
            let b = mk(&c, n, 3, |i, j| bv[i * 3 + j]);
            c.pool().flush_all().unwrap();
            c.clear_cache().unwrap();
            let before = c.io_snapshot();
            let (l, lf) = chol_tiled_parallel(&a, 3 * 64, threads, None).unwrap();
            let (x, xf) = tri_solve_parallel(&l, &b, 3 * 64, threads, None).unwrap();
            c.pool().flush_all().unwrap();
            let delta = c.io_snapshot() - before;
            (
                l.to_rows().unwrap(),
                x.to_rows().unwrap(),
                lf,
                xf,
                delta.reads,
                delta.writes,
            )
        };
        let seq = run(1);
        for threads in [2, 4] {
            let par = run(threads);
            assert_eq!(par.0, seq.0, "{threads}-thread factor diverged");
            assert_eq!(par.1, seq.1, "{threads}-thread solution diverged");
            assert_eq!((par.2, par.3), (seq.2, seq.3), "flops diverged");
            assert_eq!(par.4, seq.4, "{threads}-thread reads diverged");
            assert_eq!(par.5, seq.5, "{threads}-thread writes diverged");
        }
    }

    #[test]
    fn chol_per_panel_read_budget_is_pinned() {
        // Exact counted I/O for the 4x4-panel schedule under a tiny pool:
        // the budget below is the panel schedule's read set, derived once
        // and pinned (single shard + LRU makes it deterministic).
        let n = 32; // 4x4 single-tile panels (p = 8, one block per panel)
        let c = ctx(4);
        let a = mk(&c, n, n, |i, j| spd_sym(i, j, n));
        c.pool().flush_all().unwrap();
        c.clear_cache().unwrap();
        let before = c.io_snapshot();
        let (l, _) = chol_tiled(&a, 3 * 64, None).unwrap();
        c.pool().flush_all().unwrap();
        let delta = c.io_snapshot() - before;
        drop(l);
        let nb = 4u64;
        // Copy-in: the lower triangle of `a`, one block per panel.
        let copy_reads = nb * (nb + 1) / 2;
        // Per step k (b = nb-1-k trailing panels): POTRF re-reads its
        // diagonal panel; TRSM reads each column panel; the update reads
        // its two operand panels and its output panel per trailing cell
        // (i == j reuses the single operand read).
        let mut step_reads = 0u64;
        for k in 0..nb {
            let b = nb - 1 - k;
            step_reads += 1; // POTRF
            step_reads += b; // TRSM column
            for i in 0..b {
                for j in 0..=i {
                    step_reads += if i == j { 2 } else { 3 };
                }
            }
        }
        // The schedule's demand-read set is an upper bound; the 4-frame
        // LRU pool serves some re-touches (e.g. the POTRF re-read right
        // after the copy-in wrote the panel) from cache. The exact count
        // under this deterministic single-shard schedule is pinned below —
        // any drift means the tile schedule changed.
        assert!(delta.reads <= copy_reads + step_reads, "demand set grew");
        assert_eq!(delta.reads, 30, "pinned per-tile read budget moved");
        // Writes: all 16 panels of the working copy, then one write-back
        // per POTRF/TRSM/update step (dirty blocks flush once).
        let mut step_writes = 0u64;
        for k in 0..nb {
            let b = nb - 1 - k;
            step_writes += 1 + b + b * (b + 1) / 2;
        }
        assert!(delta.writes <= nb * nb + step_writes, "write set grew");
        assert_eq!(delta.writes, 33, "pinned write budget moved");
    }

    #[test]
    fn prefetch_declarations_are_read_count_neutral() {
        // Same factorization, prefetch off vs on: identical read/write
        // totals (prefetch moves reads in time, never adds any).
        let n = 33; // ragged: exercises the partial-panel paths too
        let run = |depth: usize| {
            let c = StorageCtx::new_mem_opts(
                512,
                riot_storage::PoolConfig {
                    frames: 64,
                    replacer: riot_storage::ReplacerKind::Lru,
                    prefetch_depth: depth,
                    ..riot_storage::PoolConfig::default()
                },
                1,
            );
            let a = mk(&c, n, n, |i, j| spd_sym(i, j, n));
            let b = mk(&c, n, 5, |i, j| (i * 5 + j) as f64);
            c.pool().flush_all().unwrap();
            c.clear_cache().unwrap();
            let before = c.io_snapshot();
            let (x, _) = cholesky_solve(&a, &b, 3 * 64, 1, None).unwrap();
            c.pool().wait_prefetch_idle();
            c.pool().flush_all().unwrap();
            let delta = c.io_snapshot() - before;
            (x.to_rows().unwrap(), delta.reads, delta.writes)
        };
        let (x0, r0, w0) = run(0);
        let (x8, r8, w8) = run(8);
        assert_eq!(x0, x8, "prefetch changed the result");
        assert_eq!(r0, r8, "prefetch changed read counts");
        assert_eq!(w0, w8, "prefetch changed write counts");
    }
}
