//! Out-of-core sparse kernels over the block-compressed format.
//!
//! Together with the dense kernels of [`super::matmul`], the family below
//! closes the `{sparse, dense} x {sparse, dense}` product table and the
//! unary transpose, so no combination is forced through a densifying
//! conversion (the §5 argument: format-aware operators, not format
//! conversions, are where the I/O wins live). Per-kernel counted-I/O
//! contracts (pinned by `tests/sparse_exec.rs` and the unit tests here;
//! page layout in the [`riot_sparse`] crate docs):
//!
//! * [`spmv`] — sparse matrix x dense vector. Walks tile-rows, touching
//!   **only occupied pages**: reads are `occupied_pages` plus at most one
//!   block of `x` per occupied tile; `y` streams out whole blocks at a
//!   time (each written exactly once, never read back), so its blocks
//!   cost pure writes.
//! * [`dmv`] — the dense reference the sparse path is measured against
//!   (reads every tile of `A` regardless of content).
//! * [`spmdm`] — sparse x dense with **dense accumulator strips**: one
//!   tile-row of accumulators lives in memory; each occupied sparse tile
//!   pulls the matching block-row of the dense operand, so skipped sparse
//!   tiles skip their dense reads too.
//! * [`dmspm`] — dense x sparse, mirroring [`spmdm`] from the right: the
//!   accumulator strip follows the dense operand's tile-rows, and only
//!   sparse tile-rows with at least one occupied tile pull the matching
//!   rectangle of the dense operand. Reads are `occupied_pages(B)` plus
//!   the `A` rectangles matching occupied `B` tile-rows — a fully empty
//!   `B` tile-row costs zero `A` I/O.
//! * [`sptranspose`] — native sparse transpose. Planning derives the
//!   output directory from the cached input directory (zero I/O); the
//!   data pass reads each occupied input page exactly once and re-sorts
//!   its entries per tile. Total: `occupied_pages` reads,
//!   `occupied_pages + dir_blocks` writes.
//! * [`spmm`] — sparse x sparse producing a sparse result. The output
//!   extent must be sized before any page can land, so the kernel runs
//!   **two passes** — but pass one now **spills** each computed tile's
//!   entries to a growable catalog extent ([`SpmmPlan`]), and pass two
//!   replays the spill instead of recomputing: zero extra flops, zero
//!   re-reads of `A` or `B`. [`spmm_plan`] / [`spmm_fill`] expose the
//!   passes individually so tests can pin exactly that.
//!
//! All kernels return `(result, flops)` where flops counts scalar
//! multiplications (for [`sptranspose`], moved non-zeros), so measured
//! I/O and arithmetic can be checked against the cost model like the
//! dense kernels.

use std::sync::{Arc, Condvar, Mutex};

use riot_array::{DenseMatrix, DenseVector, MatrixLayout, StorageCtx, TileOrder, VectorWriter};
use riot_sparse::SparseMatrix;
use riot_storage::{BlockId, ObjectId};

use super::matmul::{prefetch_rect, read_rect, run_parallel, write_rect};
use super::{ExecError, ExecResult};

/// Out-of-core sparse matrix-vector multiply `y = A x`.
///
/// Reads the occupied pages of `A` once each and streams `x` per
/// tile-row; `y` streams out block by block as pure write I/O (no
/// read-modify-write of fresh output pages).
pub fn spmv(
    a: &SparseMatrix,
    x: &DenseVector,
    name: Option<&str>,
) -> ExecResult<(DenseVector, u64)> {
    spmv_parallel(a, x, 1, name)
}

/// [`spmv`] with the tile-row strips distributed over `threads` scoped
/// workers, each owning its accumulator/`x` scratch. Work items are
/// **output-block groups** of tile-rows, so every worker writes whole
/// disjoint blocks of `y` (pure writes, like the sequential stream) and
/// every occupied page of `A` is read by exactly one worker. Results are
/// bit-identical to the sequential schedule (each output element is one
/// worker's ordinary tile-row fold) and — in the in-memory regime — total
/// counted I/O is identical too. `threads <= 1` runs the groups inline in
/// order, reproducing the sequential kernel's device sequence exactly.
pub fn spmv_parallel(
    a: &SparseMatrix,
    x: &DenseVector,
    threads: usize,
    name: Option<&str>,
) -> ExecResult<(DenseVector, u64)> {
    let (rows, cols) = a.shape();
    assert_eq!(x.len(), cols, "spmv operand lengths");
    let (tile_r, tile_c) = a.tile_dims();
    let (tr, tc) = a.tile_grid();
    let y = DenseVector::create(a.ctx(), rows, name)?;
    let per_block = y.elems_per_block();
    // Tile dims come from the block size, so whole tile-rows pack into
    // whole output blocks: groups never share a block.
    debug_assert_eq!(per_block % tile_r, 0, "tile-rows pack into y blocks");
    let rows_per_group = per_block;
    let groups: Vec<usize> = (0..rows).step_by(rows_per_group).collect();

    let run_group = |g0: usize, acc: &mut [f64], xbuf: &mut [f64]| -> ExecResult<u64> {
        a.ctx().governor().checkpoint("sparse.spmv.group")?;
        let g_rows = rows_per_group.min(rows - g0);
        let mut flops = 0u64;
        let t0 = (g0 / tile_r) as u64;
        let t1 = ((g0 + g_rows - 1) / tile_r) as u64;
        for ti in t0..=t1 {
            // Next strip's occupied pages load while this one computes.
            if ti + 1 < tr {
                a.prefetch_tile_row(ti + 1);
            }
            let r0 = ti as usize * tile_r;
            let m = tile_r.min(rows - r0);
            let strip = &mut acc[r0 - g0..r0 - g0 + m];
            strip.fill(0.0);
            for tj in 0..tc {
                let Some(tile) = a.tile(ti, tj)? else {
                    continue;
                };
                let c0 = tj as usize * tile_c;
                let take = tile_c.min(cols - c0);
                x.read_range(c0, &mut xbuf[..take])?;
                tile.for_each(|r, c, v| strip[r] += v * xbuf[c]);
                flops += tile.nnz() as u64;
            }
        }
        y.write_range(g0, &acc[..g_rows])?;
        a.ctx().governor().add_flops(flops);
        Ok(flops)
    };

    let flops = run_parallel(
        threads,
        &groups,
        || (vec![0.0; rows_per_group], vec![0.0; tile_c]),
        |&g0, (acc, xbuf)| run_group(g0, acc, xbuf),
    )?;
    Ok((y, flops))
}

/// Dense reference matrix-vector multiply `y = A x`, tile by tile: the
/// kernel the sparse path is measured against (it must read every tile of
/// `A` regardless of content).
pub fn dmv(a: &DenseMatrix, x: &DenseVector, name: Option<&str>) -> ExecResult<(DenseVector, u64)> {
    let (rows, cols) = a.shape();
    assert_eq!(x.len(), cols, "dmv operand lengths");
    let (tile_r, tile_c) = a.tile_dims();
    let (tr, tc) = a.tile_grid();
    let mut writer = VectorWriter::new(a.ctx(), rows, name)?;
    let mut acc = vec![0.0; tile_r];
    let mut xbuf = vec![0.0; tile_c];
    let mut flops = 0u64;
    for ti in 0..tr {
        a.ctx().governor().checkpoint("sparse.dmv.strip")?;
        let strip_f0 = flops;
        let r0 = ti as usize * tile_r;
        let m = tile_r.min(rows - r0);
        acc[..m].fill(0.0);
        for tj in 0..tc {
            let tile = a.pin_tile(ti, tj)?;
            let c0 = tj as usize * tile_c;
            let take = tile_c.min(cols - c0);
            x.read_range(c0, &mut xbuf[..take])?;
            for r in 0..m {
                let row = &tile[r * tile_c..r * tile_c + take];
                let mut s = 0.0;
                for (rv, xv) in row.iter().zip(&xbuf[..take]) {
                    s += rv * xv;
                }
                acc[r] += s;
            }
            flops += (m * take) as u64;
        }
        writer.push_chunk(&acc[..m])?;
        a.ctx().governor().add_flops(flops - strip_f0);
    }
    Ok((writer.finish()?, flops))
}

/// Sparse `A` times dense `B`, producing a dense matrix with square
/// tiling. Processes one tile-row of `A` at a time with a dense
/// accumulator strip of `tile_r x n3`; only occupied `A` tiles pull the
/// matching `tile_c x n3` block-row of `B`.
pub fn spmdm(
    a: &SparseMatrix,
    b: &DenseMatrix,
    name: Option<&str>,
) -> ExecResult<(DenseMatrix, u64)> {
    spmdm_parallel(a, b, 1, name)
}

/// [`spmdm`] with the tile-row strip loop distributed over `threads`
/// scoped workers, each owning its accumulator-strip and `B` block-row
/// scratch. Strips are independent (disjoint output rows), so results are
/// bit-identical to the sequential schedule and — in the in-memory regime
/// — total counted I/O is identical too. `threads <= 1` runs the strips
/// inline in order, reproducing the sequential device sequence exactly.
pub fn spmdm_parallel(
    a: &SparseMatrix,
    b: &DenseMatrix,
    threads: usize,
    name: Option<&str>,
) -> ExecResult<(DenseMatrix, u64)> {
    let (n1, n2) = a.shape();
    assert_eq!(n2, b.rows(), "spmdm inner dimensions");
    let n3 = b.cols();
    let (tile_r, tile_c) = a.tile_dims();
    let (tr, tc) = a.tile_grid();
    let t = DenseMatrix::create(
        a.ctx(),
        n1,
        n3,
        MatrixLayout::Square,
        TileOrder::RowMajor,
        name,
    )?;
    let strips: Vec<u64> = (0..tr).collect();
    let run_strip = |ti: u64, acc: &mut [f64], brow: &mut [f64]| -> ExecResult<u64> {
        a.ctx().governor().checkpoint("sparse.spmdm.strip")?;
        // Declare the next strip: its occupied `A` pages and the matching
        // `B` block-rows load while this strip computes (the bounded
        // prefetch queue caps how much of the window is accepted).
        if ti + 1 < tr {
            a.prefetch_tile_row(ti + 1);
            for tj in 0..tc {
                if a.tile_page_block(ti + 1, tj).is_some() {
                    let k0 = tj as usize * tile_c;
                    prefetch_rect(b, k0, 0, tile_c.min(n2 - k0), n3);
                }
            }
        }
        let r0 = ti as usize * tile_r;
        let m = tile_r.min(n1 - r0);
        let mut flops = 0u64;
        acc[..m * n3].fill(0.0);
        for tj in 0..tc {
            let Some(tile) = a.tile(ti, tj)? else {
                continue;
            };
            let k0 = tj as usize * tile_c;
            let kk = tile_c.min(n2 - k0);
            read_rect(b, k0, 0, kk, n3, brow)?;
            tile.for_each(|r, k, v| {
                let bslice = &brow[k * n3..k * n3 + n3];
                let aslice = &mut acc[r * n3..r * n3 + n3];
                for (av, bv) in aslice.iter_mut().zip(bslice) {
                    *av += v * bv;
                }
            });
            flops += tile.nnz() as u64 * n3 as u64;
        }
        write_rect(&t, r0, 0, m, n3, acc)?;
        a.ctx().governor().add_flops(flops);
        Ok(flops)
    };
    let flops = run_parallel(
        threads,
        &strips,
        || (vec![0.0; tile_r * n3], vec![0.0; tile_c * n3]),
        |&ti, (acc, brow)| run_strip(ti, acc, brow),
    )?;
    Ok((t, flops))
}

/// Dense `A` times sparse `B`, producing a dense matrix with square
/// tiling — the mirror image of [`spmdm`]. Processes one tile-row strip
/// of `A` at a time with a dense accumulator of `strip x n3`; within a
/// strip, a tile-row of `B` with at least one occupied tile pulls the
/// matching `strip x tile_k` rectangle of `A` exactly once, and a fully
/// empty `B` tile-row pulls nothing.
pub fn dmspm(
    a: &DenseMatrix,
    b: &SparseMatrix,
    name: Option<&str>,
) -> ExecResult<(DenseMatrix, u64)> {
    dmspm_parallel(a, b, 1, name)
}

/// [`dmspm`] with the output-strip loop distributed over `threads` scoped
/// workers, each owning its accumulator and `A`-rectangle scratch. Strips
/// are independent (disjoint output rows; `B` is read shared), so results
/// are bit-identical to the sequential schedule and — in the in-memory
/// regime — total counted I/O is identical too. `threads <= 1` runs the
/// strips inline in order, reproducing the sequential device sequence
/// exactly.
pub fn dmspm_parallel(
    a: &DenseMatrix,
    b: &SparseMatrix,
    threads: usize,
    name: Option<&str>,
) -> ExecResult<(DenseMatrix, u64)> {
    let (n1, n2) = a.shape();
    assert_eq!(n2, b.rows(), "dmspm inner dimensions");
    let n3 = b.cols();
    let (tile_k, tile_c) = b.tile_dims();
    let (btr, btc) = b.tile_grid();
    let strip = a.tile_dims().0;
    let t = DenseMatrix::create(
        a.ctx(),
        n1,
        n3,
        MatrixLayout::Square,
        TileOrder::RowMajor,
        name,
    )?;
    let strips: Vec<usize> = (0..n1).step_by(strip).collect();
    let run_strip = |r0: usize, acc: &mut [f64], abuf: &mut [f64]| -> ExecResult<u64> {
        a.ctx().governor().checkpoint("sparse.dmspm.strip")?;
        let m = strip.min(n1 - r0);
        let mut flops = 0u64;
        acc[..m * n3].fill(0.0);
        for tk in 0..btr {
            // Next `B` tile-row (and the `A` rectangle it will pull, when
            // occupied) loads while this tile-row computes.
            if tk + 1 < btr {
                b.prefetch_tile_row(tk + 1);
                if (0..btc).any(|tj| b.tile_page_block(tk + 1, tj).is_some()) {
                    let k1 = (tk + 1) as usize * tile_k;
                    prefetch_rect(a, r0, k1, m, tile_k.min(n2 - k1));
                }
            }
            let k0 = tk as usize * tile_k;
            let kk = tile_k.min(n2 - k0);
            let mut loaded = false;
            for tj in 0..btc {
                let Some(tile) = b.tile(tk, tj)? else {
                    continue;
                };
                if !loaded {
                    read_rect(a, r0, k0, m, kk, abuf)?;
                    loaded = true;
                }
                let c0 = tj as usize * tile_c;
                tile.for_each(|k, c, v| {
                    let col = c0 + c;
                    for r in 0..m {
                        acc[r * n3 + col] += abuf[r * kk + k] * v;
                    }
                });
                flops += tile.nnz() as u64 * m as u64;
            }
        }
        write_rect(&t, r0, 0, m, n3, acc)?;
        a.ctx().governor().add_flops(flops);
        Ok(flops)
    };
    let flops = run_parallel(
        threads,
        &strips,
        || (vec![0.0; strip * n3], vec![0.0; strip * tile_k]),
        |&r0, (acc, abuf)| run_strip(r0, acc, abuf),
    )?;
    Ok((t, flops))
}

/// Native sparse transpose: `(t(A), moved non-zeros)`.
///
/// A thin counting wrapper over [`SparseMatrix::transpose`] — the result
/// stays sparse and the planning pass derives the output directory from
/// the cached input directory without touching storage. Counted I/O:
/// `occupied_pages` reads + (`occupied_pages` + output directory) writes.
pub fn sptranspose(a: &SparseMatrix, name: Option<&str>) -> ExecResult<(SparseMatrix, u64)> {
    a.ctx().governor().checkpoint("sparse.transpose")?;
    let t = a.transpose(name)?;
    a.ctx().governor().add_flops(a.nnz());
    Ok((t, a.nnz()))
}

// ---- SpMM: planned pass one, spilled, replayed by pass two -------------
//
// Spill stream format: for each occupied output tile in row-major tile
// order, its entries as three consecutive f64s (local row, local col,
// value), already sorted by (row, col). No per-tile headers: the plan's
// nnz counts delimit the stream.

/// An append-only `f64` stream over a growable catalog object
/// ([`StorageCtx::alloc_growable`] / [`StorageCtx::extend_object`]): the
/// spill target for SpMM's pass-one results. Blocks are written through
/// the pool, so spill I/O shows up in the same counters as everything
/// else.
struct SpillWriter {
    ctx: Arc<StorageCtx>,
    /// The spill object; `Some` until ownership moves to the
    /// [`SpillFile`] in [`SpillWriter::finish`]. Dropping the writer with
    /// the object still here (an error unwound pass one) releases it, so
    /// failed plans cannot leak spill storage.
    object: Option<ObjectId>,
    /// Every block of the object, segment by segment, in stream order.
    blocks: Vec<BlockId>,
    /// Blocks already filled and written.
    used: usize,
    /// The current partial block.
    buf: Vec<f64>,
    epb: usize,
    /// Total values pushed.
    len: u64,
}

impl SpillWriter {
    fn new(ctx: &Arc<StorageCtx>, name: &str) -> ExecResult<Self> {
        let (object, extent) = ctx.alloc_growable(1, Some(name))?;
        let blocks = (0..extent.blocks).map(|i| extent.block(i)).collect();
        Ok(SpillWriter {
            ctx: Arc::clone(ctx),
            object: Some(object),
            blocks,
            used: 0,
            buf: Vec::with_capacity(ctx.elems_per_block()),
            epb: ctx.elems_per_block(),
            len: 0,
        })
    }

    fn push(&mut self, v: f64) -> ExecResult<()> {
        self.buf.push(v);
        self.len += 1;
        if self.buf.len() == self.epb {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> ExecResult<()> {
        let object = self.object.expect("writer not finished");
        if self.used == self.blocks.len() {
            // Grow geometrically (capped) so extension stays O(log n)
            // catalog calls without over-allocating small spills.
            let grow = (self.blocks.len() as u64).clamp(1, 64);
            let seg = self.ctx.extend_object(object, grow)?;
            self.blocks.extend((0..seg.blocks).map(|i| seg.block(i)));
        }
        let mut page = self.ctx.pool().pin_new(self.blocks[self.used])?;
        page[..self.buf.len()].copy_from_slice(&self.buf);
        page[self.buf.len()..].fill(0.0);
        drop(page);
        self.used += 1;
        self.buf.clear();
        Ok(())
    }

    fn finish(mut self) -> ExecResult<SpillFile> {
        if !self.buf.is_empty() {
            self.flush_block()?;
        }
        Ok(SpillFile {
            ctx: Arc::clone(&self.ctx),
            object: self.object.take().expect("writer finished once"),
            blocks: std::mem::take(&mut self.blocks),
            len: self.len,
            epb: self.epb,
        })
    }
}

impl Drop for SpillWriter {
    fn drop(&mut self) {
        // Reached only when pass one errored out before `finish`;
        // best-effort release, a failure here only leaks simulated disk.
        if let Some(object) = self.object.take() {
            let _ = self.ctx.drop_object(object);
        }
    }
}

/// A finished spill stream; freed (blocks released) on drop.
struct SpillFile {
    ctx: Arc<StorageCtx>,
    object: ObjectId,
    blocks: Vec<BlockId>,
    len: u64,
    epb: usize,
}

impl SpillFile {
    /// Blocks a full sequential read touches (allocated-but-unused tail
    /// segments are never read).
    fn data_blocks(&self) -> u64 {
        (self.len as usize).div_ceil(self.epb) as u64
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        // Best-effort: a failure here only leaks simulated disk.
        let _ = self.ctx.drop_object(self.object);
    }
}

/// Sequential reader over a [`SpillFile`], one pinned block at a time.
struct SpillReader<'f> {
    file: &'f SpillFile,
    at: u64,
    buf: Vec<f64>,
}

impl<'f> SpillReader<'f> {
    fn new(file: &'f SpillFile) -> Self {
        SpillReader {
            file,
            at: 0,
            buf: Vec::new(),
        }
    }

    fn next(&mut self) -> ExecResult<f64> {
        assert!(self.at < self.file.len, "spill stream over-read");
        let off = (self.at as usize) % self.file.epb;
        if off == 0 {
            let idx = (self.at as usize) / self.file.epb;
            // Sequential read-ahead: the next spill block loads while this
            // one's entries are consumed.
            if ((idx + 1) as u64) < self.file.data_blocks() {
                self.file
                    .ctx
                    .pool()
                    .prefetch(&self.file.blocks[idx + 1..idx + 2]);
            }
            let page = self.file.ctx.pool().pin(self.file.blocks[idx])?;
            self.buf.clear();
            self.buf.extend_from_slice(&page[..]);
        }
        self.at += 1;
        Ok(self.buf[off])
    }
}

/// SpMM's pass-one product: the per-output-tile nnz plan **plus** the
/// computed non-zeros themselves, spilled to a growable catalog extent so
/// [`spmm_fill`] replays them instead of recomputing. Holding a plan pins
/// the input handles; dropping it (with or without filling) releases the
/// spill storage.
pub struct SpmmPlan {
    a: SparseMatrix,
    b: SparseMatrix,
    /// Per-output-tile nnz in row-major tile order.
    tile_nnz: Vec<u32>,
    spill: SpillFile,
    flops: u64,
}

impl SpmmPlan {
    /// Non-zeros of the product (summed over the plan).
    pub fn out_nnz(&self) -> u64 {
        self.tile_nnz.iter().map(|&n| u64::from(n)).sum()
    }

    /// Blocks [`spmm_fill`]'s replay reads from the spill — the *entire*
    /// pass-two read footprint beyond the output extent itself.
    pub fn spill_blocks(&self) -> u64 {
        self.spill.data_blocks()
    }

    /// Scalar multiplications pass one performed.
    pub fn flops(&self) -> u64 {
        self.flops
    }
}

/// SpMM pass one: compute every output tile once (dense accumulator tile
/// in memory), record its nnz in the plan, and spill its sorted entries.
pub fn spmm_plan(a: &SparseMatrix, b: &SparseMatrix) -> ExecResult<SpmmPlan> {
    spmm_plan_parallel(a, b, 1)
}

/// [`spmm_plan`] with the per-output-tile loop distributed over `threads`
/// scoped workers, each owning its dense accumulator scratch.
///
/// Output tiles are computed in parallel **groups**, but their entries are
/// appended to the spill strictly in row-major tile order by the
/// coordinating thread — so the spill stream (and therefore the plan, the
/// filled product, and the spill's block count) is **bit-identical** to
/// the sequential pass at every thread count. `threads <= 1` computes the
/// cells inline in order, reproducing the sequential device sequence
/// exactly.
pub fn spmm_plan_parallel(
    a: &SparseMatrix,
    b: &SparseMatrix,
    threads: usize,
) -> ExecResult<SpmmPlan> {
    let (_, n2) = a.shape();
    assert_eq!(n2, b.rows(), "spmm inner dimensions");
    let (atr, atc) = a.tile_dims();
    let (btr, btc) = b.tile_dims();
    assert_eq!(
        atc, btr,
        "spmm tile grids must align on the inner dimension"
    );
    assert_eq!(
        atc, btc,
        "spmm output tiling follows A's layout; B's tile width must match"
    );
    let (gtr, _) = a.tile_grid();
    let (_, gtc) = b.tile_grid();
    let inner = a.tile_grid().1;
    let threads = threads.max(1);
    let cells: Vec<(u64, u64)> = (0..gtr)
        .flat_map(|bi| (0..gtc).map(move |bj| (bi, bj)))
        .collect();

    // Declare one output cell's input pages (pairs where both the A and B
    // tile are occupied — exactly the pages the compute will pin).
    let prefetch_cell = |(bi, bj): (u64, u64)| {
        if a.ctx().pool().prefetch_depth() == 0 {
            return;
        }
        let mut blocks = Vec::new();
        for bk in 0..inner {
            if let (Some(ab), Some(bb)) = (a.tile_page_block(bi, bk), b.tile_page_block(bk, bj)) {
                blocks.push(ab);
                blocks.push(bb);
            }
        }
        a.ctx().pool().prefetch(&blocks);
    };

    // One output tile: accumulate into `scratch`, extract the sorted
    // non-zero entries; returns the cell's flop count.
    let run_cell = |(bi, bj): (u64, u64),
                    scratch: &mut [f64],
                    entries: &mut Vec<(usize, usize, f64)>|
     -> ExecResult<u64> {
        a.ctx().governor().checkpoint("sparse.spmm.cell")?;
        scratch.fill(0.0);
        let mut fl = 0u64;
        for bk in 0..inner {
            let Some(at) = a.tile(bi, bk)? else { continue };
            let Some(bt) = b.tile(bk, bj)? else { continue };
            at.for_each(|r, k, va| {
                bt.for_each_in_row(k, |c, vb| {
                    scratch[r * btc + c] += va * vb;
                    fl += 1;
                });
            });
        }
        entries.clear();
        for (i, &v) in scratch.iter().enumerate() {
            if v != 0.0 {
                entries.push((i / btc, i % btc, v));
            }
        }
        a.ctx().governor().add_flops(fl);
        Ok(fl)
    };

    let mut spill = SpillWriter::new(a.ctx(), "spmm-spill")?;
    let mut tile_nnz = Vec::with_capacity(cells.len());
    let mut flops = 0u64;
    let append = |spill: &mut SpillWriter, entries: &[(usize, usize, f64)]| -> ExecResult<()> {
        for &(r, c, v) in entries {
            spill.push(r as f64)?;
            spill.push(c as f64)?;
            spill.push(v)?;
        }
        Ok(())
    };

    if threads <= 1 {
        let mut scratch = vec![0.0; atr * btc];
        let mut entries = Vec::new();
        for (idx, &cell) in cells.iter().enumerate() {
            // The next cell's pages load while this cell computes.
            if idx + 1 < cells.len() {
                prefetch_cell(cells[idx + 1]);
            }
            flops += run_cell(cell, &mut scratch, &mut entries)?;
            append(&mut spill, &entries)?;
            tile_nnz.push(entries.len() as u32);
        }
    } else {
        // One long-lived worker pool for the whole grid: workers claim
        // cells (throttled to a small window past the append frontier, so
        // buffered results stay bounded), and the coordinating thread
        // consumes them strictly in row-major order — the spill stream is
        // byte-identical to the sequential pass. Each worker allocates
        // its scratch exactly once.
        type CellOut = (Vec<(usize, usize, f64)>, u64);
        struct Shared {
            /// Finished-but-unappended cells, indexed by cell number.
            results: Vec<Option<CellOut>>,
            /// Next cell a worker may claim.
            next: usize,
            /// Cells appended to the spill so far (the window base).
            appended: usize,
            failure: Option<ExecError>,
        }
        let window = 2 * threads;
        let shared = Mutex::new(Shared {
            results: (0..cells.len()).map(|_| None).collect(),
            next: 0,
            appended: 0,
            failure: None,
        });
        let ready = Condvar::new();
        let mut append_err: ExecResult<()> = Ok(());
        std::thread::scope(|s| {
            for _ in 0..threads.min(cells.len()) {
                s.spawn(|| {
                    let mut scratch = vec![0.0; atr * btc];
                    loop {
                        let i = {
                            let mut st = shared.lock().unwrap();
                            loop {
                                if st.failure.is_some() || st.next == cells.len() {
                                    return; // done or a sibling failed
                                }
                                if st.next < st.appended + window {
                                    break;
                                }
                                st = ready.wait(st).unwrap();
                            }
                            let i = st.next;
                            st.next += 1;
                            i
                        };
                        // Own-cell window: the pool loads the cell's pages
                        // concurrently while the first pin runs.
                        prefetch_cell(cells[i]);
                        let mut entries = Vec::new();
                        match run_cell(cells[i], &mut scratch, &mut entries) {
                            Ok(fl) => {
                                let mut st = shared.lock().unwrap();
                                st.results[i] = Some((entries, fl));
                                ready.notify_all();
                            }
                            Err(e) => {
                                let mut st = shared.lock().unwrap();
                                st.failure.get_or_insert(e);
                                ready.notify_all();
                                return;
                            }
                        }
                    }
                });
            }
            // Coordinator: append each cell as it becomes ready, in order.
            for i in 0..cells.len() {
                let out = {
                    let mut st = shared.lock().unwrap();
                    loop {
                        if st.failure.is_some() {
                            return; // error surfaces after the scope
                        }
                        if let Some(out) = st.results[i].take() {
                            st.appended = i + 1;
                            ready.notify_all();
                            break out;
                        }
                        st = ready.wait(st).unwrap();
                    }
                };
                let (entries, fl) = out;
                flops += fl;
                if let Err(e) = append(&mut spill, &entries) {
                    append_err = Err(e);
                    let mut st = shared.lock().unwrap();
                    // Stop the workers; the real error returns below.
                    st.failure
                        .get_or_insert(ExecError::Unsupported(String::new()));
                    ready.notify_all();
                    return;
                }
                tile_nnz.push(entries.len() as u32);
            }
        });
        append_err?;
        if let Some(e) = shared.into_inner().unwrap().failure {
            return Err(e);
        }
    }
    Ok(SpmmPlan {
        a: a.clone(),
        b: b.clone(),
        tile_nnz,
        spill: spill.finish()?,
        flops,
    })
}

/// SpMM pass two: size the output from the plan, then **replay the
/// spill** — no tile of `A` or `B` is re-read and no multiplication is
/// re-executed. Reads are exactly [`SpmmPlan::spill_blocks`]; the spill
/// is released before returning.
pub fn spmm_fill(plan: SpmmPlan, name: Option<&str>) -> ExecResult<(SparseMatrix, u64)> {
    let (n1, _) = plan.a.shape();
    let n3 = plan.b.cols();
    let (gtr, _) = plan.a.tile_grid();
    let (_, gtc) = plan.b.tile_grid();
    let out = SparseMatrix::create_with_plan(
        plan.a.ctx(),
        n1,
        n3,
        plan.a.layout(),
        &plan.tile_nnz,
        name,
    )?;
    let mut reader = SpillReader::new(&plan.spill);
    let mut entries = Vec::new();
    for bi in 0..gtr {
        plan.a.ctx().governor().checkpoint("sparse.spmm.fill")?;
        for bj in 0..gtc {
            let nnz = plan.tile_nnz[(bi * gtc + bj) as usize] as usize;
            if nnz == 0 {
                continue;
            }
            entries.clear();
            for _ in 0..nnz {
                let r = reader.next()? as usize;
                let c = reader.next()? as usize;
                let v = reader.next()?;
                entries.push((r, c, v));
            }
            out.write_tile_entries_at(bi, bj, &entries)?;
        }
    }
    debug_assert_eq!(reader.at, plan.spill.len, "spill fully consumed");
    Ok((out, plan.flops))
}

/// Sparse x sparse multiply producing a sparse result with `A`'s tiling:
/// [`spmm_plan`] then [`spmm_fill`]. Every multiplication runs exactly
/// once; memory is one dense accumulator tile plus one spill block.
pub fn spmm(
    a: &SparseMatrix,
    b: &SparseMatrix,
    name: Option<&str>,
) -> ExecResult<(SparseMatrix, u64)> {
    spmm_fill(spmm_plan(a, b)?, name)
}

/// [`spmm`] with pass one's per-output-tile loop on `threads` workers
/// ([`spmm_plan_parallel`]); the spilled plan — and therefore the filled
/// product — is bit-identical at every thread count.
pub fn spmm_parallel(
    a: &SparseMatrix,
    b: &SparseMatrix,
    threads: usize,
    name: Option<&str>,
) -> ExecResult<(SparseMatrix, u64)> {
    spmm_fill(spmm_plan_parallel(a, b, threads)?, name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use riot_array::StorageCtx;
    use std::sync::Arc;

    /// 512-byte blocks: 64 elements, 8x8 square tiles.
    fn ctx(frames: usize) -> Arc<StorageCtx> {
        StorageCtx::new_mem(512, frames)
    }

    fn band_triplets(rows: usize, cols: usize) -> Vec<(usize, usize, f64)> {
        // A banded pattern: occupied only near the (wrapped) diagonal.
        (0..rows)
            .flat_map(|r| {
                [(r, r % cols), (r, (r + 3) % cols)]
                    .into_iter()
                    .map(move |(i, j)| (i, j, (i * cols + j) as f64 * 0.25 + 1.0))
            })
            .collect()
    }

    fn dense_ref_mv(rows: usize, cols: usize, m: &[f64], x: &[f64]) -> Vec<f64> {
        (0..rows)
            .map(|r| (0..cols).map(|c| m[r * cols + c] * x[c]).sum())
            .collect()
    }

    fn assert_close(got: &[f64], want: &[f64]) {
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            assert!((g - w).abs() < 1e-9, "got {g}, want {w}");
        }
    }

    #[test]
    fn spmv_matches_dense_reference() {
        let c = ctx(64);
        let (rows, cols) = (37, 29); // ragged vs 8x8 tiles
        let trips = band_triplets(rows, cols);
        let a = SparseMatrix::from_triplets(&c, rows, cols, MatrixLayout::Square, &trips, None)
            .unwrap();
        let xdata: Vec<f64> = (0..cols).map(|i| (i as f64 * 0.3).sin()).collect();
        let x = DenseVector::from_slice(&c, &xdata, None).unwrap();
        let (y, flops) = spmv(&a, &x, None).unwrap();
        assert_eq!(flops, a.nnz());
        let want = dense_ref_mv(rows, cols, &a.to_rows().unwrap(), &xdata);
        assert_close(&y.to_vec().unwrap(), &want);
    }

    #[test]
    fn spmv_reads_only_occupied_pages() {
        let c = ctx(64);
        let (rows, cols) = (64, 64); // 8x8 grid of 8x8 tiles
        let trips = vec![(0, 0, 1.0), (20, 40, 2.0), (63, 7, 3.0)];
        let a = SparseMatrix::from_triplets(&c, rows, cols, MatrixLayout::Square, &trips, None)
            .unwrap();
        let x = DenseVector::from_slice(&c, &vec![1.0; cols], None).unwrap();
        c.pool().flush_all().unwrap();
        c.clear_cache().unwrap();
        let before = c.io_snapshot();
        let (y, _) = spmv(&a, &x, None).unwrap();
        let delta = c.io_snapshot() - before;
        // 3 occupied pages + at most one x block per occupied tile.
        assert!(
            delta.reads <= a.occupied_pages() + 3,
            "reads {} vs occupied {}",
            delta.reads,
            a.occupied_pages()
        );
        assert!(delta.reads < a.dense_blocks());
        assert_eq!(y.get(0).unwrap(), 1.0);
    }

    #[test]
    fn spmdm_matches_dense_multiply() {
        let c = ctx(128);
        let (n1, n2, n3) = (20, 24, 13);
        let trips = band_triplets(n1, n2);
        let a =
            SparseMatrix::from_triplets(&c, n1, n2, MatrixLayout::Square, &trips, None).unwrap();
        let b = DenseMatrix::from_fn(
            &c,
            n2,
            n3,
            MatrixLayout::Square,
            TileOrder::RowMajor,
            None,
            |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0,
        )
        .unwrap();
        let (t, flops) = spmdm(&a, &b, None).unwrap();
        assert_eq!(flops, a.nnz() * n3 as u64);
        let ad = a.to_rows().unwrap();
        let bd = b.to_rows().unwrap();
        let mut want = vec![0.0; n1 * n3];
        for i in 0..n1 {
            for k in 0..n2 {
                for j in 0..n3 {
                    want[i * n3 + j] += ad[i * n2 + k] * bd[k * n3 + j];
                }
            }
        }
        assert_close(&t.to_rows().unwrap(), &want);
    }

    #[test]
    fn spmm_matches_dense_multiply_and_stays_sparse() {
        let c = ctx(128);
        let (n1, n2, n3) = (24, 16, 24);
        let a = SparseMatrix::from_triplets(
            &c,
            n1,
            n2,
            MatrixLayout::Square,
            &[(0, 0, 2.0), (9, 9, 3.0), (23, 15, -1.0)],
            None,
        )
        .unwrap();
        let b = SparseMatrix::from_triplets(
            &c,
            n2,
            n3,
            MatrixLayout::Square,
            &[(0, 5, 4.0), (9, 9, 5.0), (15, 23, 6.0), (1, 1, 7.0)],
            None,
        )
        .unwrap();
        let (t, _) = spmm(&a, &b, None).unwrap();
        assert_eq!(t.shape(), (n1, n3));
        // Expected: (0,5)=8, (9,9)=15, (23,23)=-6.
        let got = t.to_rows().unwrap();
        let mut want = vec![0.0; n1 * n3];
        want[5] = 8.0;
        want[9 * n3 + 9] = 15.0;
        want[23 * n3 + 23] = -6.0;
        assert_close(&got, &want);
        assert_eq!(t.nnz(), 3);
        // Product of sparse inputs occupies few pages.
        assert!(t.occupied_pages() < t.dense_blocks());
    }

    #[test]
    fn dmspm_matches_dense_multiply() {
        let c = ctx(128);
        let (n1, n2, n3) = (20, 24, 13);
        let a = DenseMatrix::from_fn(
            &c,
            n1,
            n2,
            MatrixLayout::Square,
            TileOrder::RowMajor,
            None,
            |i, j| ((i * 5 + j * 3) % 13) as f64 - 6.0,
        )
        .unwrap();
        let trips = band_triplets(n2, n3);
        let b =
            SparseMatrix::from_triplets(&c, n2, n3, MatrixLayout::Square, &trips, None).unwrap();
        let (t, flops) = dmspm(&a, &b, None).unwrap();
        assert_eq!(flops, b.nnz() * n1 as u64);
        let ad = a.to_rows().unwrap();
        let bd = b.to_rows().unwrap();
        let mut want = vec![0.0; n1 * n3];
        for i in 0..n1 {
            for k in 0..n2 {
                for j in 0..n3 {
                    want[i * n3 + j] += ad[i * n2 + k] * bd[k * n3 + j];
                }
            }
        }
        assert_close(&t.to_rows().unwrap(), &want);
    }

    #[test]
    fn dmspm_skips_dense_reads_for_empty_sparse_tile_rows() {
        let c = ctx(256);
        // A: 16x64 dense (2x8 grid of 8x8 tiles). B: 64x16 sparse with a
        // single occupied tile at tile-row 3: only A's columns 24..32
        // (one tile per strip) may be read.
        let (n1, n2, n3) = (16, 64, 16);
        let a = DenseMatrix::from_fn(
            &c,
            n1,
            n2,
            MatrixLayout::Square,
            TileOrder::RowMajor,
            None,
            |i, j| (i + j) as f64,
        )
        .unwrap();
        let b = SparseMatrix::from_triplets(
            &c,
            n2,
            n3,
            MatrixLayout::Square,
            &[(25, 9, 2.0), (30, 14, -1.0)],
            None,
        )
        .unwrap();
        assert_eq!(b.occupied_pages(), 1);
        c.pool().flush_all().unwrap();
        c.clear_cache().unwrap();
        let before = c.io_snapshot();
        let (t, _) = dmspm(&a, &b, None).unwrap();
        let delta = c.io_snapshot() - before;
        // Per output strip (2 strips): 1 B page (cached after the first
        // strip) + 1 A tile. Everything else is skipped.
        let a_tiles_read = 2; // one per strip, at tile-column 3
        assert_eq!(delta.reads, b.occupied_pages() + a_tiles_read);
        // Far below the dense footprint A would cost a dense kernel.
        assert!(delta.reads < a.blocks());
        assert_eq!(t.shape(), (n1, n3));
    }

    #[test]
    fn sptranspose_stays_sparse_with_pinned_io() {
        let c = ctx(64);
        let (rows, cols) = (40, 24);
        let trips = band_triplets(rows, cols);
        let a = SparseMatrix::from_triplets(&c, rows, cols, MatrixLayout::Square, &trips, None)
            .unwrap();
        c.pool().flush_all().unwrap();
        c.clear_cache().unwrap();
        let before = c.io_snapshot();
        let (t, moved) = sptranspose(&a, None).unwrap();
        c.pool().flush_all().unwrap();
        let delta = c.io_snapshot() - before;
        assert_eq!(moved, a.nnz());
        assert_eq!(t.shape(), (cols, rows));
        assert_eq!(t.nnz(), a.nnz());
        assert_eq!(delta.reads, a.occupied_pages(), "reads = occupied pages");
        assert_eq!(
            delta.writes,
            t.occupied_pages() + t.dir_blocks(),
            "writes = output pages + directory"
        );
        // Semantics: t(A)[j][i] == A[i][j].
        let ar = a.to_rows().unwrap();
        let tr = t.to_rows().unwrap();
        for i in 0..rows {
            for j in 0..cols {
                assert_eq!(tr[j * rows + i], ar[i * cols + j]);
            }
        }
    }

    #[test]
    fn spmm_pass_two_replays_the_spill_without_recomputing() {
        let c = ctx(256);
        let (n1, n2, n3) = (32, 32, 32);
        let a = SparseMatrix::from_triplets(
            &c,
            n1,
            n2,
            MatrixLayout::Square,
            &band_triplets(n1, n2),
            None,
        )
        .unwrap();
        let b = SparseMatrix::from_triplets(
            &c,
            n2,
            n3,
            MatrixLayout::Square,
            &band_triplets(n2, n3),
            None,
        )
        .unwrap();
        let plan = spmm_plan(&a, &b).unwrap();
        let pass_one_flops = plan.flops();
        let spill_blocks = plan.spill_blocks();
        assert!(pass_one_flops > 0 && plan.out_nnz() > 0);

        // Pass two from a cold cache: the only reads are the spill replay
        // — no page of A or B is touched again, and no flops accrue.
        c.pool().flush_all().unwrap();
        c.clear_cache().unwrap();
        let before = c.io_snapshot();
        let (t, total_flops) = spmm_fill(plan, None).unwrap();
        let delta = c.io_snapshot() - before;
        assert_eq!(total_flops, pass_one_flops, "no recomputation in pass two");
        assert_eq!(delta.reads, spill_blocks, "pass two reads only the spill");
        assert_eq!(t.shape(), (n1, n3));

        // And the result is still the right product.
        let ad = a.to_rows().unwrap();
        let bd = b.to_rows().unwrap();
        let mut want = vec![0.0; n1 * n3];
        for i in 0..n1 {
            for k in 0..n2 {
                for j in 0..n3 {
                    want[i * n3 + j] += ad[i * n2 + k] * bd[k * n3 + j];
                }
            }
        }
        assert_close(&t.to_rows().unwrap(), &want);
    }

    #[test]
    fn spmm_flops_count_each_multiplication_once() {
        let c = ctx(128);
        let (n1, n2, n3) = (24, 16, 24);
        let a = SparseMatrix::from_triplets(
            &c,
            n1,
            n2,
            MatrixLayout::Square,
            &band_triplets(n1, n2),
            None,
        )
        .unwrap();
        let b = SparseMatrix::from_triplets(
            &c,
            n2,
            n3,
            MatrixLayout::Square,
            &band_triplets(n2, n3),
            None,
        )
        .unwrap();
        // Reference: one multiplication per (i, k, j) with both operands
        // non-zero.
        let ad = a.to_rows().unwrap();
        let bd = b.to_rows().unwrap();
        let mut want_flops = 0u64;
        for i in 0..n1 {
            for k in 0..n2 {
                if ad[i * n2 + k] == 0.0 {
                    continue;
                }
                for j in 0..n3 {
                    if bd[k * n3 + j] != 0.0 {
                        want_flops += 1;
                    }
                }
            }
        }
        let (_, flops) = spmm(&a, &b, None).unwrap();
        assert_eq!(flops, want_flops, "each multiplication counted once");
    }

    #[test]
    fn failed_spmm_plan_releases_the_spill() {
        use riot_storage::testing::FailpointDevice;
        use riot_storage::{BufferPool, MemBlockDevice, PoolConfig};

        let device = FailpointDevice::new(Box::new(MemBlockDevice::new(512)));
        let handle = device.handle();
        let c = riot_array::StorageCtx::from_pool(BufferPool::new(
            Box::new(device),
            PoolConfig::default(),
        ));
        let a = SparseMatrix::from_triplets(
            &c,
            16,
            16,
            MatrixLayout::Square,
            &band_triplets(16, 16),
            None,
        )
        .unwrap();
        // Evict everything, then make the first occupied page unreadable:
        // pass one dies mid-stream.
        c.pool().flush_all().unwrap();
        c.clear_cache().unwrap();
        let first_page = riot_storage::BlockId(a.dir_blocks());
        handle.fail_reads(first_page, 1);
        let live_before = c.live_objects();
        let blocks_before = c.total_blocks();
        assert!(spmm_plan(&a, &a).is_err(), "injected read error surfaces");
        // The half-written spill did not leak: object count and block
        // footprint are exactly what they were before the attempt.
        assert_eq!(c.live_objects(), live_before);
        assert_eq!(c.total_blocks(), blocks_before);
        // And with the failpoint consumed, the same plan now succeeds.
        let plan = spmm_plan(&a, &a).unwrap();
        assert!(plan.out_nnz() > 0);
    }

    #[test]
    fn spmm_spill_storage_is_released() {
        let c = ctx(128);
        let a = SparseMatrix::from_triplets(
            &c,
            16,
            16,
            MatrixLayout::Square,
            &band_triplets(16, 16),
            None,
        )
        .unwrap();
        let live_before = c.live_objects();
        let (t, _) = spmm(&a, &a, None).unwrap();
        // Only the product object outlives the call: the spill is gone.
        assert_eq!(c.live_objects(), live_before + 1);
        drop(t);
        // Dropping an unfilled plan releases the spill too.
        let plan = spmm_plan(&a, &a).unwrap();
        let live_with_plan = c.live_objects();
        drop(plan);
        assert_eq!(c.live_objects(), live_with_plan - 1);
    }

    #[test]
    fn dmv_matches_spmv_semantics() {
        let c = ctx(64);
        let (rows, cols) = (19, 23);
        let trips = band_triplets(rows, cols);
        let sp = SparseMatrix::from_triplets(&c, rows, cols, MatrixLayout::Square, &trips, None)
            .unwrap();
        let dense = sp.to_dense(TileOrder::RowMajor, None).unwrap();
        let xdata: Vec<f64> = (0..cols).map(|i| i as f64 - 11.0).collect();
        let x = DenseVector::from_slice(&c, &xdata, None).unwrap();
        let (ys, _) = spmv(&sp, &x, None).unwrap();
        let (yd, flops) = dmv(&dense, &x, None).unwrap();
        assert_eq!(flops, (rows * cols) as u64);
        assert_close(&ys.to_vec().unwrap(), &yd.to_vec().unwrap());
    }
}
