//! Out-of-core sparse kernels over the block-compressed format.
//!
//! Three kernels cover the sparse workloads the subsystem opens up:
//!
//! * [`spmv`] — sparse matrix x dense vector. Walks tile-rows, touching
//!   **only occupied pages**: the I/O is proportional to the number of
//!   occupied tiles, not the dense footprint (the counted-I/O tests pin
//!   this down against [`dmv`], the dense reference).
//! * [`spmdm`] — sparse x dense matrix with **dense accumulator tiles**:
//!   one tile-row of accumulators lives in memory; each occupied sparse
//!   tile pulls the matching block-row of the dense operand, so skipped
//!   sparse tiles skip their dense reads too.
//! * [`spmm`] — sparse x sparse producing a sparse result. The output
//!   extent must be sized before any page can land (the catalog hands out
//!   contiguous extents), so the kernel runs **two passes**: pass one
//!   counts per-output-tile non-zeros into a plan, pass two recomputes and
//!   writes each page. Memory stays one dense accumulator tile; the flop
//!   count reports both passes because both are actually executed.
//!
//! All kernels return `(result, flops)` where flops counts scalar
//! multiplications, so measured I/O and arithmetic can be checked against
//! the cost model like the dense kernels ([`super::matmul`]).

use riot_array::{DenseMatrix, DenseVector, MatrixLayout, TileOrder, VectorWriter};
use riot_sparse::SparseMatrix;

use super::matmul::{read_rect, write_rect};
use super::ExecResult;

/// Out-of-core sparse matrix-vector multiply `y = A x`.
///
/// Reads the occupied pages of `A` once each and streams `x` per
/// tile-row; `y` streams out through a [`VectorWriter`], so its blocks
/// cost pure write I/O (no read-modify-write of fresh output pages).
pub fn spmv(
    a: &SparseMatrix,
    x: &DenseVector,
    name: Option<&str>,
) -> ExecResult<(DenseVector, u64)> {
    let (rows, cols) = a.shape();
    assert_eq!(x.len(), cols, "spmv operand lengths");
    let (tile_r, tile_c) = a.tile_dims();
    let (tr, tc) = a.tile_grid();
    let mut writer = VectorWriter::new(a.ctx(), rows, name)?;
    let mut acc = vec![0.0; tile_r];
    let mut xbuf = vec![0.0; tile_c];
    let mut flops = 0u64;
    for ti in 0..tr {
        let r0 = ti as usize * tile_r;
        let m = tile_r.min(rows - r0);
        acc[..m].fill(0.0);
        for tj in 0..tc {
            let Some(tile) = a.tile(ti, tj)? else {
                continue;
            };
            let c0 = tj as usize * tile_c;
            let take = tile_c.min(cols - c0);
            x.read_range(c0, &mut xbuf[..take])?;
            tile.for_each(|r, c, v| acc[r] += v * xbuf[c]);
            flops += tile.nnz() as u64;
        }
        writer.push_chunk(&acc[..m])?;
    }
    Ok((writer.finish()?, flops))
}

/// Dense reference matrix-vector multiply `y = A x`, tile by tile: the
/// kernel the sparse path is measured against (it must read every tile of
/// `A` regardless of content).
pub fn dmv(a: &DenseMatrix, x: &DenseVector, name: Option<&str>) -> ExecResult<(DenseVector, u64)> {
    let (rows, cols) = a.shape();
    assert_eq!(x.len(), cols, "dmv operand lengths");
    let (tile_r, tile_c) = a.tile_dims();
    let (tr, tc) = a.tile_grid();
    let mut writer = VectorWriter::new(a.ctx(), rows, name)?;
    let mut acc = vec![0.0; tile_r];
    let mut xbuf = vec![0.0; tile_c];
    let mut flops = 0u64;
    for ti in 0..tr {
        let r0 = ti as usize * tile_r;
        let m = tile_r.min(rows - r0);
        acc[..m].fill(0.0);
        for tj in 0..tc {
            let tile = a.pin_tile(ti, tj)?;
            let c0 = tj as usize * tile_c;
            let take = tile_c.min(cols - c0);
            x.read_range(c0, &mut xbuf[..take])?;
            for r in 0..m {
                let row = &tile[r * tile_c..r * tile_c + take];
                let mut s = 0.0;
                for (rv, xv) in row.iter().zip(&xbuf[..take]) {
                    s += rv * xv;
                }
                acc[r] += s;
            }
            flops += (m * take) as u64;
        }
        writer.push_chunk(&acc[..m])?;
    }
    Ok((writer.finish()?, flops))
}

/// Sparse `A` times dense `B`, producing a dense matrix with square
/// tiling. Processes one tile-row of `A` at a time with a dense
/// accumulator strip of `tile_r x n3`; only occupied `A` tiles pull the
/// matching `tile_c x n3` block-row of `B`.
pub fn spmdm(
    a: &SparseMatrix,
    b: &DenseMatrix,
    name: Option<&str>,
) -> ExecResult<(DenseMatrix, u64)> {
    let (n1, n2) = a.shape();
    assert_eq!(n2, b.rows(), "spmdm inner dimensions");
    let n3 = b.cols();
    let (tile_r, tile_c) = a.tile_dims();
    let (tr, tc) = a.tile_grid();
    let t = DenseMatrix::create(
        a.ctx(),
        n1,
        n3,
        MatrixLayout::Square,
        TileOrder::RowMajor,
        name,
    )?;
    let mut acc = vec![0.0; tile_r * n3];
    let mut brow = vec![0.0; tile_c * n3];
    let mut flops = 0u64;
    for ti in 0..tr {
        let r0 = ti as usize * tile_r;
        let m = tile_r.min(n1 - r0);
        acc[..m * n3].fill(0.0);
        for tj in 0..tc {
            let Some(tile) = a.tile(ti, tj)? else {
                continue;
            };
            let k0 = tj as usize * tile_c;
            let kk = tile_c.min(n2 - k0);
            read_rect(b, k0, 0, kk, n3, &mut brow)?;
            tile.for_each(|r, k, v| {
                let bslice = &brow[k * n3..k * n3 + n3];
                let aslice = &mut acc[r * n3..r * n3 + n3];
                for (av, bv) in aslice.iter_mut().zip(bslice) {
                    *av += v * bv;
                }
            });
            flops += tile.nnz() as u64 * n3 as u64;
        }
        write_rect(&t, r0, 0, m, n3, &acc)?;
    }
    Ok((t, flops))
}

/// Sparse x sparse multiply producing a sparse result with `A`'s tiling.
///
/// Two passes (see the module docs): both count toward the returned flop
/// total because both actually run. Memory is one dense accumulator tile.
pub fn spmm(
    a: &SparseMatrix,
    b: &SparseMatrix,
    name: Option<&str>,
) -> ExecResult<(SparseMatrix, u64)> {
    let (n1, n2) = a.shape();
    assert_eq!(n2, b.rows(), "spmm inner dimensions");
    let n3 = b.cols();
    let (atr, atc) = a.tile_dims();
    let (btr, btc) = b.tile_dims();
    assert_eq!(
        atc, btr,
        "spmm tile grids must align on the inner dimension"
    );
    assert_eq!(
        atc, btc,
        "spmm output tiling follows A's layout; B's tile width must match"
    );
    let (gtr, _) = a.tile_grid();
    let (_, gtc) = b.tile_grid();
    let inner = a.tile_grid().1;
    let mut scratch = vec![0.0; atr * btc];
    let mut flops = 0u64;

    // One output tile: accumulate A(bi, *) x B(*, bj) densely in scratch.
    let compute_tile = |bi: u64, bj: u64, scratch: &mut [f64]| -> ExecResult<(u32, u64)> {
        scratch.fill(0.0);
        let mut fl = 0u64;
        for bk in 0..inner {
            let Some(at) = a.tile(bi, bk)? else { continue };
            let Some(bt) = b.tile(bk, bj)? else { continue };
            at.for_each(|r, k, va| {
                bt.for_each_in_row(k, |c, vb| {
                    scratch[r * btc + c] += va * vb;
                    fl += 1;
                });
            });
        }
        let nnz = scratch.iter().filter(|v| **v != 0.0).count() as u32;
        Ok((nnz, fl))
    };

    // Pass 1: plan per-output-tile nnz.
    let mut plan = Vec::with_capacity((gtr * gtc) as usize);
    for bi in 0..gtr {
        for bj in 0..gtc {
            let (nnz, fl) = compute_tile(bi, bj, &mut scratch)?;
            plan.push(nnz);
            flops += fl;
        }
    }
    let out = SparseMatrix::create_with_plan(a.ctx(), n1, n3, a.layout(), &plan, name)?;
    // Pass 2: recompute and write each occupied page.
    for bi in 0..gtr {
        for bj in 0..gtc {
            if plan[(bi * gtc + bj) as usize] == 0 {
                continue;
            }
            let (_, fl) = compute_tile(bi, bj, &mut scratch)?;
            flops += fl;
            out.write_tile(bi, bj, &scratch)?;
        }
    }
    Ok((out, flops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use riot_array::StorageCtx;
    use std::sync::Arc;

    /// 512-byte blocks: 64 elements, 8x8 square tiles.
    fn ctx(frames: usize) -> Arc<StorageCtx> {
        StorageCtx::new_mem(512, frames)
    }

    fn band_triplets(rows: usize, cols: usize) -> Vec<(usize, usize, f64)> {
        // A banded pattern: occupied only near the (wrapped) diagonal.
        (0..rows)
            .flat_map(|r| {
                [(r, r % cols), (r, (r + 3) % cols)]
                    .into_iter()
                    .map(move |(i, j)| (i, j, (i * cols + j) as f64 * 0.25 + 1.0))
            })
            .collect()
    }

    fn dense_ref_mv(rows: usize, cols: usize, m: &[f64], x: &[f64]) -> Vec<f64> {
        (0..rows)
            .map(|r| (0..cols).map(|c| m[r * cols + c] * x[c]).sum())
            .collect()
    }

    fn assert_close(got: &[f64], want: &[f64]) {
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            assert!((g - w).abs() < 1e-9, "got {g}, want {w}");
        }
    }

    #[test]
    fn spmv_matches_dense_reference() {
        let c = ctx(64);
        let (rows, cols) = (37, 29); // ragged vs 8x8 tiles
        let trips = band_triplets(rows, cols);
        let a = SparseMatrix::from_triplets(&c, rows, cols, MatrixLayout::Square, &trips, None)
            .unwrap();
        let xdata: Vec<f64> = (0..cols).map(|i| (i as f64 * 0.3).sin()).collect();
        let x = DenseVector::from_slice(&c, &xdata, None).unwrap();
        let (y, flops) = spmv(&a, &x, None).unwrap();
        assert_eq!(flops, a.nnz());
        let want = dense_ref_mv(rows, cols, &a.to_rows().unwrap(), &xdata);
        assert_close(&y.to_vec().unwrap(), &want);
    }

    #[test]
    fn spmv_reads_only_occupied_pages() {
        let c = ctx(64);
        let (rows, cols) = (64, 64); // 8x8 grid of 8x8 tiles
        let trips = vec![(0, 0, 1.0), (20, 40, 2.0), (63, 7, 3.0)];
        let a = SparseMatrix::from_triplets(&c, rows, cols, MatrixLayout::Square, &trips, None)
            .unwrap();
        let x = DenseVector::from_slice(&c, &vec![1.0; cols], None).unwrap();
        c.pool().flush_all().unwrap();
        c.clear_cache().unwrap();
        let before = c.io_snapshot();
        let (y, _) = spmv(&a, &x, None).unwrap();
        let delta = c.io_snapshot() - before;
        // 3 occupied pages + at most one x block per occupied tile.
        assert!(
            delta.reads <= a.occupied_pages() + 3,
            "reads {} vs occupied {}",
            delta.reads,
            a.occupied_pages()
        );
        assert!(delta.reads < a.dense_blocks());
        assert_eq!(y.get(0).unwrap(), 1.0);
    }

    #[test]
    fn spmdm_matches_dense_multiply() {
        let c = ctx(128);
        let (n1, n2, n3) = (20, 24, 13);
        let trips = band_triplets(n1, n2);
        let a =
            SparseMatrix::from_triplets(&c, n1, n2, MatrixLayout::Square, &trips, None).unwrap();
        let b = DenseMatrix::from_fn(
            &c,
            n2,
            n3,
            MatrixLayout::Square,
            TileOrder::RowMajor,
            None,
            |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0,
        )
        .unwrap();
        let (t, flops) = spmdm(&a, &b, None).unwrap();
        assert_eq!(flops, a.nnz() * n3 as u64);
        let ad = a.to_rows().unwrap();
        let bd = b.to_rows().unwrap();
        let mut want = vec![0.0; n1 * n3];
        for i in 0..n1 {
            for k in 0..n2 {
                for j in 0..n3 {
                    want[i * n3 + j] += ad[i * n2 + k] * bd[k * n3 + j];
                }
            }
        }
        assert_close(&t.to_rows().unwrap(), &want);
    }

    #[test]
    fn spmm_matches_dense_multiply_and_stays_sparse() {
        let c = ctx(128);
        let (n1, n2, n3) = (24, 16, 24);
        let a = SparseMatrix::from_triplets(
            &c,
            n1,
            n2,
            MatrixLayout::Square,
            &[(0, 0, 2.0), (9, 9, 3.0), (23, 15, -1.0)],
            None,
        )
        .unwrap();
        let b = SparseMatrix::from_triplets(
            &c,
            n2,
            n3,
            MatrixLayout::Square,
            &[(0, 5, 4.0), (9, 9, 5.0), (15, 23, 6.0), (1, 1, 7.0)],
            None,
        )
        .unwrap();
        let (t, _) = spmm(&a, &b, None).unwrap();
        assert_eq!(t.shape(), (n1, n3));
        // Expected: (0,5)=8, (9,9)=15, (23,23)=-6.
        let got = t.to_rows().unwrap();
        let mut want = vec![0.0; n1 * n3];
        want[5] = 8.0;
        want[9 * n3 + 9] = 15.0;
        want[23 * n3 + 23] = -6.0;
        assert_close(&got, &want);
        assert_eq!(t.nnz(), 3);
        // Product of sparse inputs occupies few pages.
        assert!(t.occupied_pages() < t.dense_blocks());
    }

    #[test]
    fn dmv_matches_spmv_semantics() {
        let c = ctx(64);
        let (rows, cols) = (19, 23);
        let trips = band_triplets(rows, cols);
        let sp = SparseMatrix::from_triplets(&c, rows, cols, MatrixLayout::Square, &trips, None)
            .unwrap();
        let dense = sp.to_dense(TileOrder::RowMajor, None).unwrap();
        let xdata: Vec<f64> = (0..cols).map(|i| i as f64 - 11.0).collect();
        let x = DenseVector::from_slice(&c, &xdata, None).unwrap();
        let (ys, _) = spmv(&sp, &x, None).unwrap();
        let (yd, flops) = dmv(&dense, &x, None).unwrap();
        assert_eq!(flops, (rows * cols) as u64);
        assert_close(&ys.to_vec().unwrap(), &yd.to_vec().unwrap());
    }
}
