//! Out-of-core execution: chunk pipelines and matrix-multiplication
//! kernels.
//!
//! RIOT-DB leans on the database's iterator-based execution model to
//! pipeline plan operators and avoid materializing intermediate results
//! (§4.1). This module is the native equivalent: a pull-based [`Pipe`]
//! tree produces results one chunk (block's worth) at a time, so a whole
//! elementwise expression — Line (1) of Example 1 with its twelve
//! intermediates — runs in a single pass over its inputs with O(chunk)
//! memory.

pub mod factor;
pub mod matmul;
pub mod pipeline;
pub mod sparse;

pub use factor::{chol_tiled, chol_tiled_parallel, cholesky_solve, tri_solve_parallel};
pub use matmul::{
    default_threads, matmul_bnlj, matmul_bnlj_parallel, matmul_naive, matmul_tiled,
    matmul_tiled_parallel, multiply, multiply_chain, prefetch_rect, read_rect, write_rect,
    MatMulKernel,
};
pub use pipeline::{
    drain_agg, drain_partitioned, drain_to_vec, fold_partitioned, governed, materialize, ConstScan,
    CycleScan, GatherPipe, GovernedPipe, IfElsePipe, LiteralScan, MapPipe, Pipe, Probe, RangeScan,
    VecScan, ZipPipe,
};
pub use sparse::{
    dmspm, dmspm_parallel, dmv, spmdm, spmdm_parallel, spmm, spmm_fill, spmm_parallel, spmm_plan,
    spmm_plan_parallel, spmv, spmv_parallel, sptranspose, SpmmPlan,
};

use crate::expr::ExprError;
use riot_storage::StorageError;

/// Unified execution error.
#[derive(Debug)]
pub enum ExecError {
    /// Storage-layer failure.
    Storage(StorageError),
    /// Expression-level failure (shape or subscript).
    Expr(ExprError),
    /// Cholesky pivot failure: the input to `chol`/`solve` was not
    /// positive definite. `tile` is the panel index of the failing
    /// diagonal step; `pivot` the global row/column of the bad pivot.
    NotPositiveDefinite { tile: usize, pivot: usize },
    /// Feature intentionally outside the reproduction's scope.
    Unsupported(String),
    /// The query's cancel token fired; `at` names the governance
    /// checkpoint that observed it (see `riot_storage::QueryGovernor`).
    Cancelled {
        /// Checkpoint label where cancellation was observed.
        at: &'static str,
    },
    /// A `riot_storage::ResourceLimits` budget was exceeded.
    BudgetExceeded {
        /// Which budget tripped (`"reads"`, `"writes"`, `"flops"`,
        /// `"deadline"`, `"pinned_frames"`, `"temp_blocks"`).
        resource: &'static str,
        /// Usage observed when the budget tripped.
        used: u64,
        /// The configured limit.
        limit: u64,
    },
}

impl ExecError {
    /// `true` for governance aborts — cancellation, budget exhaustion,
    /// or a pin-wait timeout. The runtime reacts to these by releasing
    /// everything the query allocated (the leak-free-abort invariant);
    /// other errors report a fault in the query or the device.
    pub fn is_governance_abort(&self) -> bool {
        match self {
            ExecError::Cancelled { .. } | ExecError::BudgetExceeded { .. } => true,
            ExecError::Storage(e) => e.is_governance(),
            _ => false,
        }
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Storage(e) => write!(f, "storage: {e}"),
            ExecError::Expr(e) => write!(f, "expression: {e}"),
            ExecError::NotPositiveDefinite { tile, pivot } => write!(
                f,
                "matrix is not positive definite: leading minor of order {} \
                 (diagonal panel {tile}) has a non-positive pivot",
                pivot + 1
            ),
            ExecError::Unsupported(what) => write!(f, "unsupported: {what}"),
            ExecError::Cancelled { at } => write!(f, "query cancelled at checkpoint '{at}'"),
            ExecError::BudgetExceeded {
                resource,
                used,
                limit,
            } => write!(
                f,
                "resource budget exceeded: {resource} used {used} > limit {limit}"
            ),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Storage(e) => Some(e),
            ExecError::Expr(e) => Some(e),
            ExecError::NotPositiveDefinite { .. } => None,
            ExecError::Unsupported(_) => None,
            ExecError::Cancelled { .. } => None,
            ExecError::BudgetExceeded { .. } => None,
        }
    }
}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        // Surface the governance family as first-class exec errors, so
        // `?` through any kernel produces the typed abort the session
        // reports (`PinTimeout` stays a storage error: it is a property
        // of the pool, not of this query's limits).
        match e {
            StorageError::Cancelled { at } => ExecError::Cancelled { at },
            StorageError::BudgetExceeded {
                resource,
                used,
                limit,
            } => ExecError::BudgetExceeded {
                resource,
                used,
                limit,
            },
            e => ExecError::Storage(e),
        }
    }
}

impl From<ExprError> for ExecError {
    fn from(e: ExprError) -> Self {
        ExecError::Expr(e)
    }
}

/// Result alias for execution.
pub type ExecResult<T> = std::result::Result<T, ExecError>;
