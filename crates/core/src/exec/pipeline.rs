//! The chunked Volcano pipeline.
//!
//! Every operator implements [`Pipe`]: `next_into` fills a caller-supplied
//! buffer with the next chunk of up to `chunk` elements and returns the
//! count (0 = end of stream). Chains of elementwise operators therefore
//! stream with O(chunk) memory and zero intermediate materialization —
//! the property the paper credits for RIOT-DB's wins over both plain R
//! (no in-memory temporaries) and the strawman (no on-disk temporaries).
//!
//! [`GatherPipe`] is the executor's index-nested-loop join: it pulls index
//! chunks and probes the data side element by element, which after the
//! optimizer's pushdown is how `z <- d[s]; print(z)` touches only ~100
//! elements of `x` and `y` instead of computing all of `d`.
//!
//! ## Parallel draining
//!
//! Pipes are `Send`, and every built-in pipe supports
//! [`Pipe::restrict`]: narrowing the stream to a contiguous span of its
//! output. [`drain_partitioned`] runs one restricted pipe per span on a
//! scoped worker pool (the same atomic work-queue schedule the parallel
//! matmul kernels use), writing each span straight into its slice of the
//! output — elementwise results are bit-identical to a sequential drain
//! because every element is computed by exactly one worker, in one pass.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use riot_array::{DenseVector, StorageCtx, VectorWriter};

use super::{ExecError, ExecResult};
use crate::expr::{AggOp, BinOp, ExprError, UnOp};

/// Default chunk size in elements: one block's worth of `f64`s.
pub const DEFAULT_CHUNK: usize = 1024;

/// A pull-based chunk producer. Pipes are `Send` so restricted partitions
/// can drain on worker threads.
pub trait Pipe: Send {
    /// Fill `out` (cleared first) with the next chunk; returns the number
    /// of elements produced, 0 at end of stream.
    fn next_into(&mut self, out: &mut Vec<f64>) -> ExecResult<usize>;

    /// Total number of elements this pipe will produce.
    fn total_len(&self) -> usize;

    /// Narrow the pipe to produce only elements `[start, start + len)` of
    /// its stream. Must be called before the first `next_into`; afterwards
    /// `total_len` reports `len`. Returns `false` when the pipe (or a
    /// child) cannot be restricted — the caller must then discard it and
    /// fall back to a sequential drain (a partially restricted tree is
    /// unusable).
    fn restrict(&mut self, _start: usize, _len: usize) -> bool {
        false
    }
}

/// A pipe adapter that places a governance checkpoint before every chunk
/// it pulls, so cancellation, deadlines, and I/O budgets are observed at
/// chunk granularity on any drain path (sequential, partitioned, or
/// aggregating) without threading the governor through every drain
/// signature.
pub struct GovernedPipe {
    inner: Box<dyn Pipe>,
    gov: Arc<riot_storage::QueryGovernor>,
    at: &'static str,
}

impl Pipe for GovernedPipe {
    fn next_into(&mut self, out: &mut Vec<f64>) -> ExecResult<usize> {
        self.gov.checkpoint(self.at)?;
        let n = self.inner.next_into(out)?;
        // One flop per element produced is a floor, not an exact count:
        // the wrapped tree may apply several operators per element. The
        // floor is enough for flop budgets to bind on drain-only queries.
        self.gov.add_flops(n as u64);
        Ok(n)
    }

    fn total_len(&self) -> usize {
        self.inner.total_len()
    }

    fn restrict(&mut self, start: usize, len: usize) -> bool {
        self.inner.restrict(start, len)
    }
}

/// Wrap `pipe` with a per-chunk governance checkpoint labelled `at`.
/// When the context's governor is disengaged the pipe is returned
/// unchanged, so ungoverned queries pay nothing — not even the extra
/// virtual dispatch.
pub fn governed(pipe: Box<dyn Pipe>, ctx: &Arc<StorageCtx>, at: &'static str) -> Box<dyn Pipe> {
    let gov = ctx.governor();
    if !gov.engaged() {
        return pipe;
    }
    Box::new(GovernedPipe {
        inner: pipe,
        gov: Arc::clone(gov),
        at,
    })
}

/// Scan of a stored vector, block-aligned.
pub struct VecScan {
    vec: DenseVector,
    pos: usize,
    end: usize,
    chunk: usize,
}

impl VecScan {
    /// Scan `vec` in chunks of `chunk` elements.
    pub fn new(vec: DenseVector, chunk: usize) -> Self {
        let end = vec.len();
        VecScan {
            vec,
            pos: 0,
            end,
            chunk,
        }
    }
}

impl Pipe for VecScan {
    fn next_into(&mut self, out: &mut Vec<f64>) -> ExecResult<usize> {
        out.clear();
        let take = (self.end - self.pos).min(self.chunk);
        if take == 0 {
            return Ok(0);
        }
        // Declare the next chunk's span before blocking on this one, so
        // its blocks load while the pipeline processes this chunk.
        let ahead = (self.end - self.pos - take).min(self.chunk);
        if ahead > 0 {
            self.vec.prefetch_range(self.pos + take, ahead);
        }
        out.resize(take, 0.0);
        self.vec.read_range(self.pos, out)?;
        self.pos += take;
        Ok(take)
    }

    fn total_len(&self) -> usize {
        self.end - self.pos
    }

    fn restrict(&mut self, start: usize, len: usize) -> bool {
        debug_assert!(start + len <= self.vec.len(), "restrict out of range");
        self.pos = start;
        self.end = start + len;
        true
    }
}

/// Scan of an in-memory literal.
pub struct LiteralScan {
    data: Arc<Vec<f64>>,
    pos: usize,
    end: usize,
    chunk: usize,
}

impl LiteralScan {
    /// Stream `data` in chunks.
    pub fn new(data: Arc<Vec<f64>>, chunk: usize) -> Self {
        let end = data.len();
        LiteralScan {
            data,
            pos: 0,
            end,
            chunk,
        }
    }
}

impl Pipe for LiteralScan {
    fn next_into(&mut self, out: &mut Vec<f64>) -> ExecResult<usize> {
        out.clear();
        let take = (self.end - self.pos).min(self.chunk);
        out.extend_from_slice(&self.data[self.pos..self.pos + take]);
        self.pos += take;
        Ok(take)
    }

    fn total_len(&self) -> usize {
        self.end - self.pos
    }

    fn restrict(&mut self, start: usize, len: usize) -> bool {
        debug_assert!(start + len <= self.data.len(), "restrict out of range");
        self.pos = start;
        self.end = start + len;
        true
    }
}

/// Generator for `start, start+1, ...` (R's `a:b`), computed on the fly.
pub struct RangeScan {
    start: i64,
    pos: usize,
    end: usize,
    chunk: usize,
}

impl RangeScan {
    /// Stream the sequence `start .. start+len-1`.
    pub fn new(start: i64, len: usize, chunk: usize) -> Self {
        RangeScan {
            start,
            pos: 0,
            end: len,
            chunk,
        }
    }
}

impl Pipe for RangeScan {
    fn next_into(&mut self, out: &mut Vec<f64>) -> ExecResult<usize> {
        out.clear();
        let take = (self.end - self.pos).min(self.chunk);
        for i in 0..take {
            out.push((self.start + (self.pos + i) as i64) as f64);
        }
        self.pos += take;
        Ok(take)
    }

    fn total_len(&self) -> usize {
        self.end - self.pos
    }

    fn restrict(&mut self, start: usize, len: usize) -> bool {
        debug_assert!(start + len <= self.end, "restrict out of range");
        self.pos = start;
        self.end = start + len;
        true
    }
}

/// A scalar broadcast to `len` elements.
pub struct ConstScan {
    value: f64,
    pos: usize,
    end: usize,
    chunk: usize,
}

impl ConstScan {
    /// Stream `value` repeated `len` times.
    pub fn new(value: f64, len: usize, chunk: usize) -> Self {
        ConstScan {
            value,
            pos: 0,
            end: len,
            chunk,
        }
    }
}

impl Pipe for ConstScan {
    fn next_into(&mut self, out: &mut Vec<f64>) -> ExecResult<usize> {
        out.clear();
        let take = (self.end - self.pos).min(self.chunk);
        out.resize(take, self.value);
        self.pos += take;
        Ok(take)
    }

    fn total_len(&self) -> usize {
        self.end - self.pos
    }

    fn restrict(&mut self, start: usize, len: usize) -> bool {
        debug_assert!(start + len <= self.end, "restrict out of range");
        self.pos = start;
        self.end = start + len;
        true
    }
}

/// A short in-memory vector recycled (cycled) out to `out_len` elements —
/// R's recycling rule for mismatched operand lengths.
pub struct CycleScan {
    data: Vec<f64>,
    pos: usize,
    end: usize,
    chunk: usize,
}

impl CycleScan {
    /// Stream `data` cyclically until `out_len` elements were produced.
    pub fn new(data: Vec<f64>, out_len: usize, chunk: usize) -> Self {
        assert!(!data.is_empty(), "cannot recycle an empty vector");
        CycleScan {
            data,
            pos: 0,
            end: out_len,
            chunk,
        }
    }
}

impl Pipe for CycleScan {
    fn next_into(&mut self, out: &mut Vec<f64>) -> ExecResult<usize> {
        out.clear();
        let take = (self.end - self.pos).min(self.chunk);
        for i in 0..take {
            out.push(self.data[(self.pos + i) % self.data.len()]);
        }
        self.pos += take;
        Ok(take)
    }

    fn total_len(&self) -> usize {
        self.end - self.pos
    }

    fn restrict(&mut self, start: usize, len: usize) -> bool {
        debug_assert!(start + len <= self.end, "restrict out of range");
        self.pos = start;
        self.end = start + len;
        true
    }
}

/// Unary elementwise operator over a child pipe.
pub struct MapPipe {
    op: UnOp,
    input: Box<dyn Pipe>,
    ops: Arc<AtomicU64>,
}

impl MapPipe {
    /// Apply `op` to each element of `input`; `ops` counts scalar work.
    pub fn new(op: UnOp, input: Box<dyn Pipe>, ops: Arc<AtomicU64>) -> Self {
        MapPipe { op, input, ops }
    }
}

impl Pipe for MapPipe {
    fn next_into(&mut self, out: &mut Vec<f64>) -> ExecResult<usize> {
        let n = self.input.next_into(out)?;
        for v in out.iter_mut() {
            *v = self.op.apply(*v);
        }
        self.ops.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn total_len(&self) -> usize {
        self.input.total_len()
    }

    fn restrict(&mut self, start: usize, len: usize) -> bool {
        self.input.restrict(start, len)
    }
}

/// Binary elementwise operator; children must produce equal lengths (the
/// compiler wraps scalars in [`ConstScan`] and recycled operands in
/// [`CycleScan`] so this always holds).
pub struct ZipPipe {
    op: BinOp,
    lhs: Box<dyn Pipe>,
    rhs: Box<dyn Pipe>,
    rbuf: Vec<f64>,
    ops: Arc<AtomicU64>,
}

impl ZipPipe {
    /// Combine two equal-length pipes elementwise with `op`.
    pub fn new(op: BinOp, lhs: Box<dyn Pipe>, rhs: Box<dyn Pipe>, ops: Arc<AtomicU64>) -> Self {
        debug_assert_eq!(lhs.total_len(), rhs.total_len(), "zip operand lengths");
        ZipPipe {
            op,
            lhs,
            rhs,
            rbuf: Vec::new(),
            ops,
        }
    }
}

impl Pipe for ZipPipe {
    fn next_into(&mut self, out: &mut Vec<f64>) -> ExecResult<usize> {
        let n = self.lhs.next_into(out)?;
        let m = self.rhs.next_into(&mut self.rbuf)?;
        debug_assert_eq!(n, m, "zip chunk lengths diverged");
        for (a, b) in out.iter_mut().zip(self.rbuf.iter()) {
            *a = self.op.apply(*a, *b);
        }
        self.ops.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn total_len(&self) -> usize {
        self.lhs.total_len()
    }

    fn restrict(&mut self, start: usize, len: usize) -> bool {
        self.lhs.restrict(start, len) && self.rhs.restrict(start, len)
    }
}

/// Elementwise conditional over three equal-length pipes.
pub struct IfElsePipe {
    cond: Box<dyn Pipe>,
    yes: Box<dyn Pipe>,
    no: Box<dyn Pipe>,
    ybuf: Vec<f64>,
    nbuf: Vec<f64>,
    ops: Arc<AtomicU64>,
}

impl IfElsePipe {
    /// `cond[i] != 0 ? yes[i] : no[i]` streamed chunkwise.
    pub fn new(
        cond: Box<dyn Pipe>,
        yes: Box<dyn Pipe>,
        no: Box<dyn Pipe>,
        ops: Arc<AtomicU64>,
    ) -> Self {
        IfElsePipe {
            cond,
            yes,
            no,
            ybuf: Vec::new(),
            nbuf: Vec::new(),
            ops,
        }
    }
}

impl Pipe for IfElsePipe {
    fn next_into(&mut self, out: &mut Vec<f64>) -> ExecResult<usize> {
        let n = self.cond.next_into(out)?;
        let ny = self.yes.next_into(&mut self.ybuf)?;
        let nn = self.no.next_into(&mut self.nbuf)?;
        debug_assert!(n == ny && n == nn, "ifelse chunk lengths diverged");
        for i in 0..n {
            out[i] = if out[i] != 0.0 {
                self.ybuf[i]
            } else {
                self.nbuf[i]
            };
        }
        self.ops.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn total_len(&self) -> usize {
        self.cond.total_len()
    }

    fn restrict(&mut self, start: usize, len: usize) -> bool {
        self.cond.restrict(start, len)
            && self.yes.restrict(start, len)
            && self.no.restrict(start, len)
    }
}

/// Random-access side of a gather: anything that can be probed by 1-based
/// index. Probing a stored vector goes through the buffer pool, so each
/// probe is at most one block read — the index-nested-loop plan of §4.1.
pub enum Probe {
    /// A stored vector.
    Stored(DenseVector),
    /// An in-memory vector.
    Mem(Arc<Vec<f64>>),
    /// The sequence `start..`.
    Range {
        /// First value of the sequence.
        start: i64,
        /// Sequence length.
        len: usize,
    },
}

impl Probe {
    /// Length of the probed vector.
    pub fn len(&self) -> usize {
        match self {
            Probe::Stored(v) => v.len(),
            Probe::Mem(v) => v.len(),
            Probe::Range { len, .. } => *len,
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch 0-based element `i`.
    pub fn get(&self, i: usize) -> ExecResult<f64> {
        match self {
            Probe::Stored(v) => Ok(v.get(i)?),
            Probe::Mem(v) => Ok(v[i]),
            Probe::Range { start, .. } => Ok((*start + i as i64) as f64),
        }
    }
}

/// Gather: pulls 1-based indices from `index` and probes `data`.
pub struct GatherPipe {
    index: Box<dyn Pipe>,
    data: Probe,
    ops: Arc<AtomicU64>,
}

impl GatherPipe {
    /// `data[index]` with 1-based indices.
    pub fn new(index: Box<dyn Pipe>, data: Probe, ops: Arc<AtomicU64>) -> Self {
        GatherPipe { index, data, ops }
    }
}

impl Pipe for GatherPipe {
    fn next_into(&mut self, out: &mut Vec<f64>) -> ExecResult<usize> {
        let n = self.index.next_into(out)?;
        for v in out.iter_mut() {
            let raw = *v as i64;
            if raw < 1 || raw as usize > self.data.len() {
                return Err(ExecError::Expr(ExprError::IndexOutOfBounds {
                    index: raw,
                    len: self.data.len(),
                }));
            }
            *v = self.data.get(raw as usize - 1)?;
        }
        self.ops.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn total_len(&self) -> usize {
        self.index.total_len()
    }

    fn restrict(&mut self, start: usize, len: usize) -> bool {
        // The probe side is random-access; narrowing the index stream
        // narrows the gather.
        self.index.restrict(start, len)
    }
}

/// Drain a pipe into a freshly stored vector (sequential writes).
pub fn materialize(
    mut pipe: Box<dyn Pipe>,
    ctx: &Arc<StorageCtx>,
    name: Option<&str>,
) -> ExecResult<DenseVector> {
    let len = pipe.total_len();
    let mut writer = VectorWriter::new(ctx, len, name)?;
    let mut buf = Vec::new();
    loop {
        ctx.governor().checkpoint("pipeline.materialize.chunk")?;
        let n = pipe.next_into(&mut buf)?;
        if n == 0 {
            break;
        }
        writer.push_chunk(&buf)?;
    }
    Ok(writer.finish()?)
}

/// Drain a pipe into memory.
pub fn drain_to_vec(mut pipe: Box<dyn Pipe>) -> ExecResult<Vec<f64>> {
    let mut out = Vec::with_capacity(pipe.total_len());
    let mut buf = Vec::new();
    loop {
        let n = pipe.next_into(&mut buf)?;
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf);
    }
    Ok(out)
}

/// Drain one pipe fully into `out` (which must have the pipe's exact
/// restricted length).
fn drain_into(pipe: &mut dyn Pipe, out: &mut [f64]) -> ExecResult<()> {
    let mut buf = Vec::new();
    let mut at = 0;
    loop {
        let n = pipe.next_into(&mut buf)?;
        if n == 0 {
            break;
        }
        out[at..at + n].copy_from_slice(&buf[..n]);
        at += n;
    }
    debug_assert_eq!(at, out.len(), "partition produced a short stream");
    Ok(())
}

/// One partitioned-drain work item: a restricted pipe plus the output
/// slice its span lands in.
pub type Partition<'out> = (Box<dyn Pipe>, &'out mut [f64]);

/// Drain restricted pipes covering disjoint spans of one logical stream
/// into the matching slices of the output, over `threads` scoped workers
/// pulling from an atomic work queue. With one part (or one thread) the
/// drain runs inline. The first failure abandons the remaining parts and
/// is returned.
pub fn drain_partitioned(parts: Vec<Partition<'_>>, threads: usize) -> ExecResult<()> {
    let threads = threads.max(1).min(parts.len());
    if threads <= 1 {
        for (mut pipe, slice) in parts {
            drain_into(pipe.as_mut(), slice)?;
        }
        return Ok(());
    }
    let items: Vec<Mutex<Option<Partition<'_>>>> =
        parts.into_iter().map(|p| Mutex::new(Some(p))).collect();
    let next = AtomicUsize::new(0);
    let failure: Mutex<Option<ExecError>> = Mutex::new(None);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                if failure.lock().unwrap().is_some() {
                    break; // a sibling failed; abandon remaining work
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let Some((mut pipe, slice)) = item.lock().unwrap().take() else {
                    continue;
                };
                if let Err(e) = drain_into(pipe.as_mut(), slice) {
                    failure.lock().unwrap().get_or_insert(e);
                    break;
                }
            });
        }
    });
    match failure.into_inner().unwrap() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Fold one pipe's whole stream with `op` from `op.init()` (no `Mean`
/// division — callers divide by the count): the per-partition leaf of the
/// fixed partition-tree aggregation.
fn fold_pipe(pipe: &mut dyn Pipe, op: AggOp) -> ExecResult<f64> {
    let mut acc = op.init();
    let mut buf = Vec::new();
    loop {
        let n = pipe.next_into(&mut buf)?;
        if n == 0 {
            break;
        }
        for &v in &buf {
            acc = op.fold(acc, v);
        }
    }
    Ok(acc)
}

/// Fold restricted pipes covering disjoint spans of one logical stream,
/// each sequentially from `op.init()`, over `threads` scoped workers
/// pulling from an atomic work queue; partials return **in partition
/// order**. Every partial is one partition's ordered fold, so the result
/// vector is bitwise independent of the worker schedule — the property
/// the fixed partition-tree aggregation is built on. With one thread the
/// partitions fold inline in order. The first failure abandons the
/// remaining partitions and is returned.
pub fn fold_partitioned(
    pipes: Vec<Box<dyn Pipe>>,
    op: AggOp,
    threads: usize,
) -> ExecResult<Vec<f64>> {
    let threads = threads.max(1).min(pipes.len());
    if threads <= 1 {
        let mut out = Vec::with_capacity(pipes.len());
        for mut pipe in pipes {
            out.push(fold_pipe(pipe.as_mut(), op)?);
        }
        return Ok(out);
    }
    let items: Vec<Mutex<Option<Box<dyn Pipe>>>> =
        pipes.into_iter().map(|p| Mutex::new(Some(p))).collect();
    let partials: Vec<Mutex<f64>> = items.iter().map(|_| Mutex::new(op.init())).collect();
    let next = AtomicUsize::new(0);
    let failure: Mutex<Option<ExecError>> = Mutex::new(None);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                if failure.lock().unwrap().is_some() {
                    break; // a sibling failed; abandon remaining work
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let Some(mut pipe) = item.lock().unwrap().take() else {
                    continue;
                };
                match fold_pipe(pipe.as_mut(), op) {
                    Ok(p) => *partials[i].lock().unwrap() = p,
                    Err(e) => {
                        failure.lock().unwrap().get_or_insert(e);
                        break;
                    }
                }
            });
        }
    });
    if let Some(e) = failure.into_inner().unwrap() {
        return Err(e);
    }
    Ok(partials
        .into_iter()
        .map(|p| p.into_inner().unwrap())
        .collect())
}

/// Drain a pipe through an aggregate, producing a scalar.
pub fn drain_agg(mut pipe: Box<dyn Pipe>, op: AggOp) -> ExecResult<f64> {
    let mut acc = op.init();
    let mut count = 0usize;
    let mut buf = Vec::new();
    loop {
        let n = pipe.next_into(&mut buf)?;
        if n == 0 {
            break;
        }
        count += n;
        for &v in &buf {
            acc = op.fold(acc, v);
        }
    }
    if op == AggOp::Mean && count > 0 {
        acc /= count as f64;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops() -> Arc<AtomicU64> {
        Arc::new(AtomicU64::new(0))
    }

    fn ctx() -> Arc<StorageCtx> {
        StorageCtx::new_mem(64, 4)
    }

    #[test]
    fn range_scan_produces_sequence() {
        let p = Box::new(RangeScan::new(5, 4, 3));
        assert_eq!(drain_to_vec(p).unwrap(), vec![5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn const_and_cycle_scans() {
        let p = Box::new(ConstScan::new(2.5, 5, 2));
        assert_eq!(drain_to_vec(p).unwrap(), vec![2.5; 5]);
        let p = Box::new(CycleScan::new(vec![1.0, 2.0], 5, 3));
        assert_eq!(drain_to_vec(p).unwrap(), vec![1.0, 2.0, 1.0, 2.0, 1.0]);
    }

    #[test]
    fn map_zip_pipeline_single_pass() {
        // sqrt((x-1)^2) over a stored vector, streamed.
        let c = ctx();
        let data: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let x = DenseVector::from_slice(&c, &data, None).unwrap();
        let counter = ops();
        let scan = Box::new(VecScan::new(x, 7));
        let one = Box::new(ConstScan::new(1.0, 20, 7));
        let sub = Box::new(ZipPipe::new(BinOp::Sub, scan, one, counter.clone()));
        let sq = Box::new(MapPipe::new(UnOp::Square, sub, counter.clone()));
        let sqrt = Box::new(MapPipe::new(UnOp::Sqrt, sq, counter.clone()));
        let got = drain_to_vec(sqrt).unwrap();
        let want: Vec<f64> = (0..20).map(|i| (i as f64 - 1.0).abs()).collect();
        assert_eq!(got, want);
        assert_eq!(counter.load(Ordering::Relaxed), 60, "3 ops x 20 elements");
    }

    #[test]
    fn ifelse_pipe_selects() {
        let counter = ops();
        let cond = Box::new(LiteralScan::new(Arc::new(vec![1.0, 0.0, 1.0]), 2));
        let yes = Box::new(ConstScan::new(9.0, 3, 2));
        let no = Box::new(LiteralScan::new(Arc::new(vec![4.0, 5.0, 6.0]), 2));
        let p = Box::new(IfElsePipe::new(cond, yes, no, counter));
        assert_eq!(drain_to_vec(p).unwrap(), vec![9.0, 5.0, 9.0]);
    }

    #[test]
    fn gather_probes_random_blocks_only() {
        let c = ctx();
        let data: Vec<f64> = (0..80).map(|i| i as f64 * 10.0).collect();
        let x = DenseVector::from_slice(&c, &data, None).unwrap();
        c.pool().flush_all().unwrap();
        c.clear_cache().unwrap();
        let before = c.io_snapshot();
        let counter = ops();
        let idx = Box::new(LiteralScan::new(Arc::new(vec![80.0, 1.0, 41.0]), 2));
        let p = Box::new(GatherPipe::new(idx, Probe::Stored(x), counter));
        assert_eq!(drain_to_vec(p).unwrap(), vec![790.0, 0.0, 400.0]);
        let delta = c.io_snapshot() - before;
        // 3 probes, at most 3 block reads, not the 10 a full scan needs.
        assert!(delta.reads <= 3, "{delta}");
    }

    #[test]
    fn gather_bounds_error() {
        let counter = ops();
        let idx = Box::new(LiteralScan::new(Arc::new(vec![4.0]), 2));
        let p = GatherPipe::new(idx, Probe::Mem(Arc::new(vec![1.0, 2.0])), counter);
        let mut p: Box<dyn Pipe> = Box::new(p);
        let mut buf = Vec::new();
        assert!(matches!(
            p.next_into(&mut buf),
            Err(ExecError::Expr(ExprError::IndexOutOfBounds {
                index: 4,
                len: 2
            }))
        ));
    }

    #[test]
    fn gather_probe_range() {
        let counter = ops();
        let idx = Box::new(LiteralScan::new(Arc::new(vec![3.0, 1.0]), 4));
        let p = Box::new(GatherPipe::new(
            idx,
            Probe::Range {
                start: 100,
                len: 10,
            },
            counter,
        ));
        assert_eq!(drain_to_vec(p).unwrap(), vec![102.0, 100.0]);
    }

    #[test]
    fn materialize_streams_to_storage() {
        let c = ctx();
        let counter = ops();
        let r = Box::new(RangeScan::new(1, 30, 8));
        let sq = Box::new(MapPipe::new(UnOp::Square, r, counter));
        let v = materialize(sq, &c, Some("squares")).unwrap();
        assert_eq!(v.len(), 30);
        assert_eq!(v.get(4).unwrap(), 25.0);
        let want: Vec<f64> = (1..=30).map(|i| (i * i) as f64).collect();
        assert_eq!(v.to_vec().unwrap(), want);
    }

    #[test]
    fn aggregates_over_pipe() {
        let mk = || Box::new(RangeScan::new(1, 10, 3)) as Box<dyn Pipe>;
        assert_eq!(drain_agg(mk(), AggOp::Sum).unwrap(), 55.0);
        assert_eq!(drain_agg(mk(), AggOp::Mean).unwrap(), 5.5);
        assert_eq!(drain_agg(mk(), AggOp::Min).unwrap(), 1.0);
        assert_eq!(drain_agg(mk(), AggOp::Max).unwrap(), 10.0);
    }

    #[test]
    fn restrict_narrows_every_scan() {
        let c = ctx();
        let data: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let stored = DenseVector::from_slice(&c, &data, None).unwrap();
        let mk: Vec<(Box<dyn Pipe>, Vec<f64>)> = vec![
            (Box::new(VecScan::new(stored.clone(), 7)), data.clone()),
            (
                Box::new(LiteralScan::new(Arc::new(data.clone()), 7)),
                data.clone(),
            ),
            (Box::new(RangeScan::new(0, 40, 7)), data.clone()),
            (Box::new(ConstScan::new(3.0, 40, 7)), vec![3.0; 40]),
            (
                Box::new(CycleScan::new(vec![1.0, 2.0, 3.0], 40, 7)),
                (0..40).map(|i| [1.0, 2.0, 3.0][i % 3]).collect(),
            ),
        ];
        for (mut pipe, full) in mk {
            assert!(pipe.restrict(11, 13));
            assert_eq!(pipe.total_len(), 13);
            let got = drain_to_vec(pipe).unwrap();
            assert_eq!(got, full[11..24].to_vec());
        }
    }

    #[test]
    fn restrict_composes_through_operators() {
        let c = ctx();
        let data: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let x = DenseVector::from_slice(&c, &data, None).unwrap();
        let counter = ops();
        let build = || -> Box<dyn Pipe> {
            let scan = Box::new(VecScan::new(x.clone(), 8));
            let two = Box::new(ConstScan::new(2.0, 30, 8));
            let mul = Box::new(ZipPipe::new(BinOp::Mul, scan, two, counter.clone()));
            Box::new(MapPipe::new(UnOp::Neg, mul, counter.clone()))
        };
        let full = drain_to_vec(build()).unwrap();
        let mut restricted = build();
        assert!(restricted.restrict(5, 12));
        assert_eq!(drain_to_vec(restricted).unwrap(), full[5..17].to_vec());
    }

    #[test]
    fn drain_partitioned_equals_sequential() {
        let c = ctx();
        let n = 100;
        let data: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x = DenseVector::from_slice(&c, &data, None).unwrap();
        let counter = ops();
        let build = || -> Box<dyn Pipe> {
            let scan = Box::new(VecScan::new(x.clone(), 8));
            Box::new(MapPipe::new(UnOp::Square, scan, counter.clone()))
        };
        let want = drain_to_vec(build()).unwrap();

        let spans = [(0usize, 32usize), (32, 32), (64, 32), (96, 4)];
        let mut out = vec![0.0; n];
        {
            let mut slices: Vec<&mut [f64]> = Vec::new();
            let mut rest: &mut [f64] = &mut out;
            for &(_, take) in &spans {
                let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
                slices.push(head);
                rest = tail;
            }
            let mut parts = Vec::new();
            for (&(s, take), slice) in spans.iter().zip(slices) {
                let mut pipe = build();
                assert!(pipe.restrict(s, take));
                parts.push((pipe, slice));
            }
            drain_partitioned(parts, 3).unwrap();
        }
        assert_eq!(out, want);
        // Every element computed exactly once across both drains.
        assert_eq!(counter.load(Ordering::Relaxed), 2 * n as u64);
    }

    #[test]
    fn pipeline_memory_is_chunk_bounded() {
        // A long pipeline over a tiny pool must still work: nothing is
        // materialized, so the pool never needs more than a block or two.
        let c = StorageCtx::new_mem(64, 2);
        let n = 400;
        let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let x = DenseVector::from_slice(&c, &data, None).unwrap();
        let y = DenseVector::from_slice(&c, &data, None).unwrap();
        let counter = ops();
        let sx = Box::new(VecScan::new(x, 8));
        let sy = Box::new(VecScan::new(y, 8));
        let sum = Box::new(ZipPipe::new(BinOp::Add, sx, sy, counter.clone()));
        let total = drain_agg(sum, AggOp::Sum).unwrap();
        assert_eq!(total, (0..n).map(|i| 2.0 * i as f64).sum::<f64>());
    }
}
