//! The chunked Volcano pipeline.
//!
//! Every operator implements [`Pipe`]: `next_into` fills a caller-supplied
//! buffer with the next chunk of up to `chunk` elements and returns the
//! count (0 = end of stream). Chains of elementwise operators therefore
//! stream with O(chunk) memory and zero intermediate materialization —
//! the property the paper credits for RIOT-DB's wins over both plain R
//! (no in-memory temporaries) and the strawman (no on-disk temporaries).
//!
//! [`GatherPipe`] is the executor's index-nested-loop join: it pulls index
//! chunks and probes the data side element by element, which after the
//! optimizer's pushdown is how `z <- d[s]; print(z)` touches only ~100
//! elements of `x` and `y` instead of computing all of `d`.

use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use riot_array::{DenseVector, StorageCtx, VectorWriter};

use super::{ExecError, ExecResult};
use crate::expr::{AggOp, BinOp, ExprError, UnOp};

/// Default chunk size in elements: one block's worth of `f64`s.
pub const DEFAULT_CHUNK: usize = 1024;

/// A pull-based chunk producer.
pub trait Pipe {
    /// Fill `out` (cleared first) with the next chunk; returns the number
    /// of elements produced, 0 at end of stream.
    fn next_into(&mut self, out: &mut Vec<f64>) -> ExecResult<usize>;

    /// Total number of elements this pipe will produce.
    fn total_len(&self) -> usize;
}

/// Scan of a stored vector, block-aligned.
pub struct VecScan {
    vec: DenseVector,
    pos: usize,
    chunk: usize,
}

impl VecScan {
    /// Scan `vec` in chunks of `chunk` elements.
    pub fn new(vec: DenseVector, chunk: usize) -> Self {
        VecScan { vec, pos: 0, chunk }
    }
}

impl Pipe for VecScan {
    fn next_into(&mut self, out: &mut Vec<f64>) -> ExecResult<usize> {
        out.clear();
        let remaining = self.vec.len() - self.pos;
        let take = remaining.min(self.chunk);
        if take == 0 {
            return Ok(0);
        }
        out.resize(take, 0.0);
        self.vec.read_range(self.pos, out)?;
        self.pos += take;
        Ok(take)
    }

    fn total_len(&self) -> usize {
        self.vec.len()
    }
}

/// Scan of an in-memory literal.
pub struct LiteralScan {
    data: Rc<Vec<f64>>,
    pos: usize,
    chunk: usize,
}

impl LiteralScan {
    /// Stream `data` in chunks.
    pub fn new(data: Rc<Vec<f64>>, chunk: usize) -> Self {
        LiteralScan {
            data,
            pos: 0,
            chunk,
        }
    }
}

impl Pipe for LiteralScan {
    fn next_into(&mut self, out: &mut Vec<f64>) -> ExecResult<usize> {
        out.clear();
        let take = (self.data.len() - self.pos).min(self.chunk);
        out.extend_from_slice(&self.data[self.pos..self.pos + take]);
        self.pos += take;
        Ok(take)
    }

    fn total_len(&self) -> usize {
        self.data.len()
    }
}

/// Generator for `start, start+1, ...` (R's `a:b`), computed on the fly.
pub struct RangeScan {
    start: i64,
    len: usize,
    pos: usize,
    chunk: usize,
}

impl RangeScan {
    /// Stream the sequence `start .. start+len-1`.
    pub fn new(start: i64, len: usize, chunk: usize) -> Self {
        RangeScan {
            start,
            len,
            pos: 0,
            chunk,
        }
    }
}

impl Pipe for RangeScan {
    fn next_into(&mut self, out: &mut Vec<f64>) -> ExecResult<usize> {
        out.clear();
        let take = (self.len - self.pos).min(self.chunk);
        for i in 0..take {
            out.push((self.start + (self.pos + i) as i64) as f64);
        }
        self.pos += take;
        Ok(take)
    }

    fn total_len(&self) -> usize {
        self.len
    }
}

/// A scalar broadcast to `len` elements.
pub struct ConstScan {
    value: f64,
    len: usize,
    pos: usize,
    chunk: usize,
}

impl ConstScan {
    /// Stream `value` repeated `len` times.
    pub fn new(value: f64, len: usize, chunk: usize) -> Self {
        ConstScan {
            value,
            len,
            pos: 0,
            chunk,
        }
    }
}

impl Pipe for ConstScan {
    fn next_into(&mut self, out: &mut Vec<f64>) -> ExecResult<usize> {
        out.clear();
        let take = (self.len - self.pos).min(self.chunk);
        out.resize(take, self.value);
        self.pos += take;
        Ok(take)
    }

    fn total_len(&self) -> usize {
        self.len
    }
}

/// A short in-memory vector recycled (cycled) out to `out_len` elements —
/// R's recycling rule for mismatched operand lengths.
pub struct CycleScan {
    data: Vec<f64>,
    out_len: usize,
    pos: usize,
    chunk: usize,
}

impl CycleScan {
    /// Stream `data` cyclically until `out_len` elements were produced.
    pub fn new(data: Vec<f64>, out_len: usize, chunk: usize) -> Self {
        assert!(!data.is_empty(), "cannot recycle an empty vector");
        CycleScan {
            data,
            out_len,
            pos: 0,
            chunk,
        }
    }
}

impl Pipe for CycleScan {
    fn next_into(&mut self, out: &mut Vec<f64>) -> ExecResult<usize> {
        out.clear();
        let take = (self.out_len - self.pos).min(self.chunk);
        for i in 0..take {
            out.push(self.data[(self.pos + i) % self.data.len()]);
        }
        self.pos += take;
        Ok(take)
    }

    fn total_len(&self) -> usize {
        self.out_len
    }
}

/// Unary elementwise operator over a child pipe.
pub struct MapPipe {
    op: UnOp,
    input: Box<dyn Pipe>,
    ops: Arc<AtomicU64>,
}

impl MapPipe {
    /// Apply `op` to each element of `input`; `ops` counts scalar work.
    pub fn new(op: UnOp, input: Box<dyn Pipe>, ops: Arc<AtomicU64>) -> Self {
        MapPipe { op, input, ops }
    }
}

impl Pipe for MapPipe {
    fn next_into(&mut self, out: &mut Vec<f64>) -> ExecResult<usize> {
        let n = self.input.next_into(out)?;
        for v in out.iter_mut() {
            *v = self.op.apply(*v);
        }
        self.ops.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn total_len(&self) -> usize {
        self.input.total_len()
    }
}

/// Binary elementwise operator; children must produce equal lengths (the
/// compiler wraps scalars in [`ConstScan`] and recycled operands in
/// [`CycleScan`] so this always holds).
pub struct ZipPipe {
    op: BinOp,
    lhs: Box<dyn Pipe>,
    rhs: Box<dyn Pipe>,
    rbuf: Vec<f64>,
    ops: Arc<AtomicU64>,
}

impl ZipPipe {
    /// Combine two equal-length pipes elementwise with `op`.
    pub fn new(op: BinOp, lhs: Box<dyn Pipe>, rhs: Box<dyn Pipe>, ops: Arc<AtomicU64>) -> Self {
        debug_assert_eq!(lhs.total_len(), rhs.total_len(), "zip operand lengths");
        ZipPipe {
            op,
            lhs,
            rhs,
            rbuf: Vec::new(),
            ops,
        }
    }
}

impl Pipe for ZipPipe {
    fn next_into(&mut self, out: &mut Vec<f64>) -> ExecResult<usize> {
        let n = self.lhs.next_into(out)?;
        let m = self.rhs.next_into(&mut self.rbuf)?;
        debug_assert_eq!(n, m, "zip chunk lengths diverged");
        for (a, b) in out.iter_mut().zip(self.rbuf.iter()) {
            *a = self.op.apply(*a, *b);
        }
        self.ops.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn total_len(&self) -> usize {
        self.lhs.total_len()
    }
}

/// Elementwise conditional over three equal-length pipes.
pub struct IfElsePipe {
    cond: Box<dyn Pipe>,
    yes: Box<dyn Pipe>,
    no: Box<dyn Pipe>,
    ybuf: Vec<f64>,
    nbuf: Vec<f64>,
    ops: Arc<AtomicU64>,
}

impl IfElsePipe {
    /// `cond[i] != 0 ? yes[i] : no[i]` streamed chunkwise.
    pub fn new(
        cond: Box<dyn Pipe>,
        yes: Box<dyn Pipe>,
        no: Box<dyn Pipe>,
        ops: Arc<AtomicU64>,
    ) -> Self {
        IfElsePipe {
            cond,
            yes,
            no,
            ybuf: Vec::new(),
            nbuf: Vec::new(),
            ops,
        }
    }
}

impl Pipe for IfElsePipe {
    fn next_into(&mut self, out: &mut Vec<f64>) -> ExecResult<usize> {
        let n = self.cond.next_into(out)?;
        let ny = self.yes.next_into(&mut self.ybuf)?;
        let nn = self.no.next_into(&mut self.nbuf)?;
        debug_assert!(n == ny && n == nn, "ifelse chunk lengths diverged");
        for i in 0..n {
            out[i] = if out[i] != 0.0 {
                self.ybuf[i]
            } else {
                self.nbuf[i]
            };
        }
        self.ops.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn total_len(&self) -> usize {
        self.cond.total_len()
    }
}

/// Random-access side of a gather: anything that can be probed by 1-based
/// index. Probing a stored vector goes through the buffer pool, so each
/// probe is at most one block read — the index-nested-loop plan of §4.1.
pub enum Probe {
    /// A stored vector.
    Stored(DenseVector),
    /// An in-memory vector.
    Mem(Rc<Vec<f64>>),
    /// The sequence `start..`.
    Range {
        /// First value of the sequence.
        start: i64,
        /// Sequence length.
        len: usize,
    },
}

impl Probe {
    /// Length of the probed vector.
    pub fn len(&self) -> usize {
        match self {
            Probe::Stored(v) => v.len(),
            Probe::Mem(v) => v.len(),
            Probe::Range { len, .. } => *len,
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch 0-based element `i`.
    pub fn get(&self, i: usize) -> ExecResult<f64> {
        match self {
            Probe::Stored(v) => Ok(v.get(i)?),
            Probe::Mem(v) => Ok(v[i]),
            Probe::Range { start, .. } => Ok((*start + i as i64) as f64),
        }
    }
}

/// Gather: pulls 1-based indices from `index` and probes `data`.
pub struct GatherPipe {
    index: Box<dyn Pipe>,
    data: Probe,
    ops: Arc<AtomicU64>,
}

impl GatherPipe {
    /// `data[index]` with 1-based indices.
    pub fn new(index: Box<dyn Pipe>, data: Probe, ops: Arc<AtomicU64>) -> Self {
        GatherPipe { index, data, ops }
    }
}

impl Pipe for GatherPipe {
    fn next_into(&mut self, out: &mut Vec<f64>) -> ExecResult<usize> {
        let n = self.index.next_into(out)?;
        for v in out.iter_mut() {
            let raw = *v as i64;
            if raw < 1 || raw as usize > self.data.len() {
                return Err(ExecError::Expr(ExprError::IndexOutOfBounds {
                    index: raw,
                    len: self.data.len(),
                }));
            }
            *v = self.data.get(raw as usize - 1)?;
        }
        self.ops.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn total_len(&self) -> usize {
        self.index.total_len()
    }
}

/// Drain a pipe into a freshly stored vector (sequential writes).
pub fn materialize(
    mut pipe: Box<dyn Pipe>,
    ctx: &Arc<StorageCtx>,
    name: Option<&str>,
) -> ExecResult<DenseVector> {
    let len = pipe.total_len();
    let mut writer = VectorWriter::new(ctx, len, name)?;
    let mut buf = Vec::new();
    loop {
        let n = pipe.next_into(&mut buf)?;
        if n == 0 {
            break;
        }
        writer.push_chunk(&buf)?;
    }
    Ok(writer.finish()?)
}

/// Drain a pipe into memory.
pub fn drain_to_vec(mut pipe: Box<dyn Pipe>) -> ExecResult<Vec<f64>> {
    let mut out = Vec::with_capacity(pipe.total_len());
    let mut buf = Vec::new();
    loop {
        let n = pipe.next_into(&mut buf)?;
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf);
    }
    Ok(out)
}

/// Drain a pipe through an aggregate, producing a scalar.
pub fn drain_agg(mut pipe: Box<dyn Pipe>, op: AggOp) -> ExecResult<f64> {
    let mut acc = op.init();
    let mut count = 0usize;
    let mut buf = Vec::new();
    loop {
        let n = pipe.next_into(&mut buf)?;
        if n == 0 {
            break;
        }
        count += n;
        for &v in &buf {
            acc = op.fold(acc, v);
        }
    }
    if op == AggOp::Mean && count > 0 {
        acc /= count as f64;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops() -> Arc<AtomicU64> {
        Arc::new(AtomicU64::new(0))
    }

    fn ctx() -> Arc<StorageCtx> {
        StorageCtx::new_mem(64, 4)
    }

    #[test]
    fn range_scan_produces_sequence() {
        let p = Box::new(RangeScan::new(5, 4, 3));
        assert_eq!(drain_to_vec(p).unwrap(), vec![5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn const_and_cycle_scans() {
        let p = Box::new(ConstScan::new(2.5, 5, 2));
        assert_eq!(drain_to_vec(p).unwrap(), vec![2.5; 5]);
        let p = Box::new(CycleScan::new(vec![1.0, 2.0], 5, 3));
        assert_eq!(drain_to_vec(p).unwrap(), vec![1.0, 2.0, 1.0, 2.0, 1.0]);
    }

    #[test]
    fn map_zip_pipeline_single_pass() {
        // sqrt((x-1)^2) over a stored vector, streamed.
        let c = ctx();
        let data: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let x = DenseVector::from_slice(&c, &data, None).unwrap();
        let counter = ops();
        let scan = Box::new(VecScan::new(x, 7));
        let one = Box::new(ConstScan::new(1.0, 20, 7));
        let sub = Box::new(ZipPipe::new(BinOp::Sub, scan, one, counter.clone()));
        let sq = Box::new(MapPipe::new(UnOp::Square, sub, counter.clone()));
        let sqrt = Box::new(MapPipe::new(UnOp::Sqrt, sq, counter.clone()));
        let got = drain_to_vec(sqrt).unwrap();
        let want: Vec<f64> = (0..20).map(|i| (i as f64 - 1.0).abs()).collect();
        assert_eq!(got, want);
        assert_eq!(counter.load(Ordering::Relaxed), 60, "3 ops x 20 elements");
    }

    #[test]
    fn ifelse_pipe_selects() {
        let counter = ops();
        let cond = Box::new(LiteralScan::new(Rc::new(vec![1.0, 0.0, 1.0]), 2));
        let yes = Box::new(ConstScan::new(9.0, 3, 2));
        let no = Box::new(LiteralScan::new(Rc::new(vec![4.0, 5.0, 6.0]), 2));
        let p = Box::new(IfElsePipe::new(cond, yes, no, counter));
        assert_eq!(drain_to_vec(p).unwrap(), vec![9.0, 5.0, 9.0]);
    }

    #[test]
    fn gather_probes_random_blocks_only() {
        let c = ctx();
        let data: Vec<f64> = (0..80).map(|i| i as f64 * 10.0).collect();
        let x = DenseVector::from_slice(&c, &data, None).unwrap();
        c.pool().flush_all().unwrap();
        c.clear_cache().unwrap();
        let before = c.io_snapshot();
        let counter = ops();
        let idx = Box::new(LiteralScan::new(Rc::new(vec![80.0, 1.0, 41.0]), 2));
        let p = Box::new(GatherPipe::new(idx, Probe::Stored(x), counter));
        assert_eq!(drain_to_vec(p).unwrap(), vec![790.0, 0.0, 400.0]);
        let delta = c.io_snapshot() - before;
        // 3 probes, at most 3 block reads, not the 10 a full scan needs.
        assert!(delta.reads <= 3, "{delta}");
    }

    #[test]
    fn gather_bounds_error() {
        let counter = ops();
        let idx = Box::new(LiteralScan::new(Rc::new(vec![4.0]), 2));
        let p = GatherPipe::new(idx, Probe::Mem(Rc::new(vec![1.0, 2.0])), counter);
        let mut p: Box<dyn Pipe> = Box::new(p);
        let mut buf = Vec::new();
        assert!(matches!(
            p.next_into(&mut buf),
            Err(ExecError::Expr(ExprError::IndexOutOfBounds {
                index: 4,
                len: 2
            }))
        ));
    }

    #[test]
    fn gather_probe_range() {
        let counter = ops();
        let idx = Box::new(LiteralScan::new(Rc::new(vec![3.0, 1.0]), 4));
        let p = Box::new(GatherPipe::new(
            idx,
            Probe::Range {
                start: 100,
                len: 10,
            },
            counter,
        ));
        assert_eq!(drain_to_vec(p).unwrap(), vec![102.0, 100.0]);
    }

    #[test]
    fn materialize_streams_to_storage() {
        let c = ctx();
        let counter = ops();
        let r = Box::new(RangeScan::new(1, 30, 8));
        let sq = Box::new(MapPipe::new(UnOp::Square, r, counter));
        let v = materialize(sq, &c, Some("squares")).unwrap();
        assert_eq!(v.len(), 30);
        assert_eq!(v.get(4).unwrap(), 25.0);
        let want: Vec<f64> = (1..=30).map(|i| (i * i) as f64).collect();
        assert_eq!(v.to_vec().unwrap(), want);
    }

    #[test]
    fn aggregates_over_pipe() {
        let mk = || Box::new(RangeScan::new(1, 10, 3)) as Box<dyn Pipe>;
        assert_eq!(drain_agg(mk(), AggOp::Sum).unwrap(), 55.0);
        assert_eq!(drain_agg(mk(), AggOp::Mean).unwrap(), 5.5);
        assert_eq!(drain_agg(mk(), AggOp::Min).unwrap(), 1.0);
        assert_eq!(drain_agg(mk(), AggOp::Max).unwrap(), 10.0);
    }

    #[test]
    fn pipeline_memory_is_chunk_bounded() {
        // A long pipeline over a tiny pool must still work: nothing is
        // materialized, so the pool never needs more than a block or two.
        let c = StorageCtx::new_mem(64, 2);
        let n = 400;
        let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let x = DenseVector::from_slice(&c, &data, None).unwrap();
        let y = DenseVector::from_slice(&c, &data, None).unwrap();
        let counter = ops();
        let sx = Box::new(VecScan::new(x, 8));
        let sy = Box::new(VecScan::new(y, 8));
        let sum = Box::new(ZipPipe::new(BinOp::Add, sx, sy, counter.clone()));
        let total = drain_agg(sum, AggOp::Sum).unwrap();
        assert_eq!(total, (0..n).map(|i| 2.0 * i as f64).sum::<f64>());
    }
}
