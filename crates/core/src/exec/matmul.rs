//! Out-of-core matrix multiplication kernels.
//!
//! Three kernels mirror the three execution strategies whose I/O costs
//! Figure 3 compares (the fourth, RIOT-DB's relational plan, is modelled
//! analytically in [`crate::cost`] as in the paper):
//!
//! * [`matmul_naive`] — Example 2's element-at-a-time triple loop. Every
//!   element access goes through the buffer pool, so with column layouts
//!   on both operands its measured I/O explodes exactly as §3 predicts.
//! * [`matmul_bnlj`] — §4's block-nested-loop-join-inspired algorithm:
//!   read as many rows of `A` as memory allows, stream `B` once per chunk.
//! * [`matmul_tiled`] — Appendix A's optimal schedule: three `p × p`
//!   square submatrices with `p = √(M/3)`, achieving
//!   Θ(n1·n2·n3/(B·√M)) I/O.
//!
//! All kernels take an explicit memory budget `mem_elems` (the paper's
//! `M`) and return the number of scalar multiplications performed, so
//! measured I/O and flops can be checked against the cost model.
//!
//! ## Parallel execution
//!
//! [`matmul_tiled_parallel`] distributes the independent `(bi, bj)` output
//! submatrices over worker threads, and [`matmul_bnlj_parallel`] does the
//! same with the row chunks; each worker owns its scratch buffers and pins
//! tiles zero-copy from the shared (ideally sharded) buffer pool. Workers
//! write disjoint output tiles, so results are identical to the sequential
//! kernels, and — when the pool is large enough to hold the operands, the
//! in-memory regime the speedup matters in — total counted I/O is
//! identical too: every operand block is loaded exactly once and every
//! output block written exactly once, in whatever order the workers reach
//! them. The single-threaded entry points run inline (no spawn), keeping
//! the sequential kernels' I/O order bit-for-bit deterministic.
//!
//! Rectangle I/O ([`read_rect`] / [`write_rect`]) performs zero per-access
//! heap allocation: a pin guard exposes each tile as `&[f64]` and rows are
//! copied straight between the frame and the caller's scratch.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use riot_array::{DenseMatrix, MatrixLayout, TileOrder};

use super::{ExecError, ExecResult};
use crate::cost::ChainTree;

/// Which kernel to use for a multiplication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatMulKernel {
    /// Element-at-a-time triple loop (Example 2).
    Naive,
    /// Row-chunked BNLJ-style algorithm (§4).
    Bnlj,
    /// Square-submatrix optimal schedule (Appendix A).
    SquareTiled,
}

/// Worker threads to use when a caller asks for "all cores".
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Multiply with the chosen kernel; returns `(product, flops)`.
pub fn multiply(
    kernel: MatMulKernel,
    a: &DenseMatrix,
    b: &DenseMatrix,
    mem_elems: usize,
    name: Option<&str>,
) -> ExecResult<(DenseMatrix, u64)> {
    match kernel {
        MatMulKernel::Naive => matmul_naive(a, b, name),
        MatMulKernel::Bnlj => matmul_bnlj(a, b, mem_elems, name),
        MatMulKernel::SquareTiled => matmul_tiled(a, b, mem_elems, name),
    }
}

fn check_dims(a: &DenseMatrix, b: &DenseMatrix) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "non-conformable matrices: {}x{} %*% {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
}

/// Distribute `items` over `threads` scoped workers pulling from an atomic
/// work queue, each with its own scratch from `make_scratch`; `work`
/// returns a flop count and the total is summed. With `threads <= 1` the
/// items run inline in order (no spawn), keeping sequential kernels'
/// I/O order deterministic. After the first failure remaining items are
/// abandoned and that error is returned.
pub(super) fn run_parallel<I: Sync, S: Send>(
    threads: usize,
    items: &[I],
    make_scratch: impl Fn() -> S + Sync,
    work: impl Fn(&I, &mut S) -> ExecResult<u64> + Sync,
) -> ExecResult<u64> {
    if threads <= 1 {
        let mut scratch = make_scratch();
        let mut total = 0u64;
        for item in items {
            total += work(item, &mut scratch)?;
        }
        return Ok(total);
    }
    let next = AtomicUsize::new(0);
    let flops = AtomicU64::new(0);
    let failure: Mutex<Option<ExecError>> = Mutex::new(None);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                // Per-worker scratch, allocated once.
                let mut scratch = make_scratch();
                loop {
                    if failure.lock().unwrap().is_some() {
                        break; // a sibling failed; abandon remaining work
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    match work(item, &mut scratch) {
                        Ok(f) => {
                            flops.fetch_add(f, Ordering::Relaxed);
                        }
                        Err(e) => {
                            failure.lock().unwrap().get_or_insert(e);
                            break;
                        }
                    }
                }
            });
        }
    });
    if let Some(e) = failure.into_inner().unwrap() {
        return Err(e);
    }
    Ok(flops.into_inner())
}

/// Example 2's algorithm: for each output column, walk the rows of `A`.
/// The result uses the same layout family R would produce (column-major).
pub fn matmul_naive(
    a: &DenseMatrix,
    b: &DenseMatrix,
    name: Option<&str>,
) -> ExecResult<(DenseMatrix, u64)> {
    check_dims(a, b);
    let (n1, n2, n3) = (a.rows(), a.cols(), b.cols());
    let ctx = a.ctx();
    let t = DenseMatrix::create(
        ctx,
        n1,
        n3,
        MatrixLayout::ColMajor,
        TileOrder::ColMajor,
        name,
    )?;
    for j in 0..n3 {
        ctx.governor().checkpoint("matmul.naive.col")?;
        for i in 0..n1 {
            let mut acc = 0.0;
            for k in 0..n2 {
                acc += a.get(i, k)? * b.get(k, j)?;
            }
            t.set(i, j, acc)?;
        }
        ctx.governor().add_flops((n1 * n2) as u64);
    }
    Ok((t, (n1 * n2 * n3) as u64))
}

/// §4's BNLJ-inspired algorithm: rows of `A` are read in chunks sized so
/// the chunk plus the corresponding rows of `T` fit in `mem_elems`; `B` is
/// scanned once per chunk, column by column.
pub fn matmul_bnlj(
    a: &DenseMatrix,
    b: &DenseMatrix,
    mem_elems: usize,
    name: Option<&str>,
) -> ExecResult<(DenseMatrix, u64)> {
    matmul_bnlj_parallel(a, b, mem_elems, 1, name)
}

/// [`matmul_bnlj`] with the chunk loop distributed over `threads` workers,
/// each owning its chunk/column scratch. The per-worker memory budget is
/// `mem_elems / threads`, so the total stays within the paper's `M`.
pub fn matmul_bnlj_parallel(
    a: &DenseMatrix,
    b: &DenseMatrix,
    mem_elems: usize,
    threads: usize,
    name: Option<&str>,
) -> ExecResult<(DenseMatrix, u64)> {
    check_dims(a, b);
    let (n1, n2, n3) = (a.rows(), a.cols(), b.cols());
    let ctx = a.ctx();
    // T inherits a row layout so chunk writes are sequential.
    let t = DenseMatrix::create(
        ctx,
        n1,
        n3,
        MatrixLayout::RowMajor,
        TileOrder::RowMajor,
        name,
    )?;
    // Fixed point between worker count and chunk size: fewer chunks than
    // requested workers means each remaining worker can take a bigger
    // slice of the memory budget (shrinking threads only grows chunks, so
    // this converges).
    let mut threads = threads.max(1);
    let mut chunk_rows;
    loop {
        chunk_rows = (mem_elems / threads / (n2 + n3)).clamp(1, n1);
        let nchunks = n1.div_ceil(chunk_rows);
        if nchunks >= threads {
            break;
        }
        threads = nchunks;
    }
    let chunk_rows = chunk_rows;
    let chunks: Vec<usize> = (0..n1).step_by(chunk_rows).collect();
    let threads = threads.min(chunks.len());

    // One chunk of A rows, streamed against all of B, into one chunk of T.
    let run_chunk =
        |r0: usize, a_chunk: &mut [f64], t_chunk: &mut [f64], col: &mut [f64]| -> ExecResult<u64> {
            a.ctx().governor().checkpoint("matmul.bnlj.chunk")?;
            let m = chunk_rows.min(n1 - r0);
            read_rect(a, r0, 0, m, n2, a_chunk)?;
            t_chunk[..m * n3].fill(0.0);
            let mut flops = 0u64;
            for j in 0..n3 {
                // One column ahead of the stream over B.
                if j + 1 < n3 {
                    prefetch_rect(b, 0, j + 1, n2, 1);
                }
                read_rect(b, 0, j, n2, 1, col)?;
                for r in 0..m {
                    let row = &a_chunk[r * n2..(r + 1) * n2];
                    let mut acc = 0.0;
                    for k in 0..n2 {
                        acc += row[k] * col[k];
                    }
                    t_chunk[r * n3 + j] = acc;
                }
                flops += (m * n2) as u64;
            }
            write_rect(&t, r0, 0, m, n3, t_chunk)?;
            a.ctx().governor().add_flops(flops);
            Ok(flops)
        };

    let flops = run_parallel(
        threads,
        &chunks,
        || {
            (
                vec![0.0; chunk_rows * n2],
                vec![0.0; chunk_rows * n3],
                vec![0.0; n2],
            )
        },
        |&r0, (a_chunk, t_chunk, col)| run_chunk(r0, a_chunk, t_chunk, col),
    )?;
    Ok((t, flops))
}

/// Appendix A's optimal schedule: square `p x p` submatrices with
/// `p = √(M/3)`, multiplied submatrix-by-submatrix. Operands and result
/// should use [`MatrixLayout::Square`] tiles so each submatrix costs
/// `p²/B` blocks, which is what makes the schedule meet the lower bound.
pub fn matmul_tiled(
    a: &DenseMatrix,
    b: &DenseMatrix,
    mem_elems: usize,
    name: Option<&str>,
) -> ExecResult<(DenseMatrix, u64)> {
    matmul_tiled_parallel(a, b, mem_elems, 1, name)
}

/// [`matmul_tiled`] with the outer `(bi, bj)` submatrix loop distributed
/// over `threads` workers. Each worker owns three `p × p` scratch buffers
/// with `p = √(M / 3·threads)` (tile-aligned), so the combined footprint
/// stays within `mem_elems`; output submatrices are disjoint, making the
/// result identical to the sequential schedule.
pub fn matmul_tiled_parallel(
    a: &DenseMatrix,
    b: &DenseMatrix,
    mem_elems: usize,
    threads: usize,
    name: Option<&str>,
) -> ExecResult<(DenseMatrix, u64)> {
    check_dims(a, b);
    let (n1, n2, n3) = (a.rows(), a.cols(), b.cols());
    let ctx = a.ctx();
    let t = DenseMatrix::create(ctx, n1, n3, MatrixLayout::Square, TileOrder::RowMajor, name)?;
    // Submatrix side: p = sqrt(M / 3·threads) rounded down to a whole
    // number of tiles, at least one tile. Fixed point between worker count
    // and p: fewer output cells than requested workers means each
    // remaining worker can take a bigger share of the budget (shrinking
    // threads only grows p, which only shrinks the cell count, so this
    // converges).
    let (tile_r, tile_c) = t.tile_dims();
    let tile_side = tile_r.max(tile_c);
    let mut threads = threads.max(1);
    let mut p;
    loop {
        p = (((mem_elems as f64 / (3.0 * threads as f64)).sqrt() as usize) / tile_side * tile_side)
            .max(tile_side);
        let cells = n1.div_ceil(p) * n3.div_ceil(p);
        if cells >= threads {
            break;
        }
        threads = cells;
    }
    let (p, threads) = (p, threads);

    let blocks = |n: usize| n.div_ceil(p);
    // One (bi, bj) output submatrix: accumulate over the bk dimension.
    let run_cell = |bi: usize,
                    bj: usize,
                    asub: &mut [f64],
                    bsub: &mut [f64],
                    tsub: &mut [f64]|
     -> ExecResult<u64> {
        a.ctx().governor().checkpoint("matmul.tiled.cell")?;
        let (i0, j0) = (bi * p, bj * p);
        let (pi, pj) = (p.min(n1 - i0), p.min(n3 - j0));
        tsub[..pi * pj].fill(0.0);
        let mut flops = 0u64;
        for bk in 0..blocks(n2) {
            let k0 = bk * p;
            let pk = p.min(n2 - k0);
            // Declare the next window before blocking on this one: its
            // tiles load in the background while this window computes.
            if bk + 1 < blocks(n2) {
                let k1 = (bk + 1) * p;
                let pk1 = p.min(n2 - k1);
                prefetch_rect(a, i0, k1, pi, pk1);
                prefetch_rect(b, k1, j0, pk1, pj);
            }
            read_rect(a, i0, k0, pi, pk, asub)?;
            read_rect(b, k0, j0, pk, pj, bsub)?;
            // Dense in-memory submatrix multiply-accumulate.
            for i in 0..pi {
                for k in 0..pk {
                    let aik = asub[i * pk + k];
                    if aik == 0.0 {
                        flops += pj as u64;
                        continue;
                    }
                    let brow = &bsub[k * pj..k * pj + pj];
                    let trow = &mut tsub[i * pj..i * pj + pj];
                    for (tv, bv) in trow.iter_mut().zip(brow) {
                        *tv += aik * bv;
                    }
                    flops += pj as u64;
                }
            }
        }
        write_rect(&t, i0, j0, pi, pj, tsub)?;
        a.ctx().governor().add_flops(flops);
        Ok(flops)
    };

    let cells: Vec<(usize, usize)> = (0..blocks(n1))
        .flat_map(|bi| (0..blocks(n3)).map(move |bj| (bi, bj)))
        .collect();
    let threads = threads.min(cells.len());

    let flops = run_parallel(
        threads,
        &cells,
        || (vec![0.0; p * p], vec![0.0; p * p], vec![0.0; p * p]),
        |&(bi, bj), (asub, bsub, tsub)| run_cell(bi, bj, asub, bsub, tsub),
    )?;
    Ok((t, flops))
}

/// Hint that the `rows x cols` rectangle at `(r0, c0)` of `m` will be
/// read soon: its covering tile blocks go to the buffer pool's background
/// prefetcher. This is how the tiled kernels *declare* their next window
/// (the schedule is known ahead of time — Appendix A's central point), so
/// the window's loads overlap the current window's compute. Free no-op
/// when the pool's prefetcher is disabled; never changes counted I/O
/// totals, only when the reads happen.
pub fn prefetch_rect(m: &DenseMatrix, r0: usize, c0: usize, rows: usize, cols: usize) {
    if rows == 0 || cols == 0 || m.ctx().pool().prefetch_depth() == 0 {
        return;
    }
    let (tr, tc) = m.tile_dims();
    let (t_row0, t_row1) = (r0 / tr, (r0 + rows - 1) / tr);
    let (t_col0, t_col1) = (c0 / tc, (c0 + cols - 1) / tc);
    let mut blocks = Vec::with_capacity((t_row1 - t_row0 + 1) * (t_col1 - t_col0 + 1));
    for ti in t_row0..=t_row1 {
        for tj in t_col0..=t_col1 {
            blocks.push(m.tile_block(ti as u64, tj as u64));
        }
    }
    m.ctx().pool().prefetch(&blocks);
}

/// Read the `rows x cols` rectangle at `(r0, c0)` of `m` into `buf`
/// (row-major, `buf[i*cols + j]`), tile by tile. Zero-copy on the pool
/// side: each tile is pinned and rows are copied straight out of the
/// frame; no per-call allocation.
pub fn read_rect(
    m: &DenseMatrix,
    r0: usize,
    c0: usize,
    rows: usize,
    cols: usize,
    buf: &mut [f64],
) -> ExecResult<()> {
    debug_assert!(buf.len() >= rows * cols, "rect buffer too small");
    let (tr, tc) = m.tile_dims();
    let (t_row0, t_row1) = (r0 / tr, (r0 + rows - 1) / tr);
    let (t_col0, t_col1) = (c0 / tc, (c0 + cols - 1) / tc);
    for ti in t_row0..=t_row1 {
        for tj in t_col0..=t_col1 {
            let tile = m.pin_tile(ti as u64, tj as u64)?;
            let (base_r, base_c) = (ti * tr, tj * tc);
            let rs = r0.max(base_r);
            let re = (r0 + rows).min(base_r + tr).min(m.rows());
            let cs = c0.max(base_c);
            let ce = (c0 + cols).min(base_c + tc).min(m.cols());
            for r in rs..re {
                let src = &tile[(r - base_r) * tc + (cs - base_c)..][..ce - cs];
                let dst = &mut buf[(r - r0) * cols + (cs - c0)..][..ce - cs];
                dst.copy_from_slice(src);
            }
        }
    }
    Ok(())
}

/// Write the `rows x cols` rectangle at `(r0, c0)` of `m` from `buf`,
/// tile by tile. Tiles fully covered by the rectangle are written without
/// a prior read; partially covered tiles are pinned read-modify-write.
/// Zero-copy on the pool side, no per-call allocation.
pub fn write_rect(
    m: &DenseMatrix,
    r0: usize,
    c0: usize,
    rows: usize,
    cols: usize,
    buf: &[f64],
) -> ExecResult<()> {
    debug_assert!(buf.len() >= rows * cols, "rect buffer too small");
    let (tr, tc) = m.tile_dims();
    let (t_row0, t_row1) = (r0 / tr, (r0 + rows - 1) / tr);
    let (t_col0, t_col1) = (c0 / tc, (c0 + cols - 1) / tc);
    for ti in t_row0..=t_row1 {
        for tj in t_col0..=t_col1 {
            let (base_r, base_c) = (ti * tr, tj * tc);
            let rs = r0.max(base_r);
            let re = (r0 + rows).min(base_r + tr).min(m.rows());
            let cs = c0.max(base_c);
            let ce = (c0 + cols).min(base_c + tc).min(m.cols());
            let covers = rs == base_r
                && cs == base_c
                && re == (base_r + tr).min(m.rows())
                && ce == (base_c + tc).min(m.cols());
            let mut tile = if covers {
                let mut t = m.pin_tile_new(ti as u64, tj as u64)?;
                t.fill(0.0);
                t
            } else {
                m.pin_tile_mut(ti as u64, tj as u64)?
            };
            for r in rs..re {
                let dst = &mut tile[(r - base_r) * tc + (cs - base_c)..][..ce - cs];
                let src = &buf[(r - r0) * cols + (cs - c0)..][..ce - cs];
                dst.copy_from_slice(src);
            }
        }
    }
    Ok(())
}

/// Evaluate a parenthesization over stored matrices with the given kernel,
/// materializing intermediates (square layout) and freeing them as soon as
/// they are consumed — Appendix B's schedule for chains.
pub fn multiply_chain(
    tree: &ChainTree,
    mats: &[DenseMatrix],
    kernel: MatMulKernel,
    mem_elems: usize,
) -> ExecResult<(DenseMatrix, u64)> {
    match tree {
        ChainTree::Leaf(i) => Ok((mats[*i].clone(), 0)),
        ChainTree::Mul(l, r) => {
            let (lm, lf) = multiply_chain(l, mats, kernel, mem_elems)?;
            let (rm, rf) = multiply_chain(r, mats, kernel, mem_elems)?;
            let (out, f) = multiply(kernel, &lm, &rm, mem_elems, None)?;
            // Free intermediates (leaves are borrowed inputs and stay).
            if !matches!(**l, ChainTree::Leaf(_)) {
                lm.free()?;
            }
            if !matches!(**r, ChainTree::Leaf(_)) {
                rm.free()?;
            }
            Ok((out, lf + rf + f))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riot_array::StorageCtx;
    use std::sync::Arc;

    /// 512-byte blocks: 64 elements, 8x8 square tiles.
    fn ctx(frames: usize) -> Arc<StorageCtx> {
        StorageCtx::new_mem(512, frames)
    }

    fn mk(
        ctx: &Arc<StorageCtx>,
        rows: usize,
        cols: usize,
        layout: MatrixLayout,
        f: impl FnMut(usize, usize) -> f64,
    ) -> DenseMatrix {
        let order = match layout {
            MatrixLayout::RowMajor => TileOrder::RowMajor,
            MatrixLayout::ColMajor => TileOrder::ColMajor,
            MatrixLayout::Square => TileOrder::RowMajor,
        };
        DenseMatrix::from_fn(ctx, rows, cols, layout, order, None, f).unwrap()
    }

    fn reference(a: &[f64], b: &[f64], n1: usize, n2: usize, n3: usize) -> Vec<f64> {
        let mut out = vec![0.0; n1 * n3];
        for i in 0..n1 {
            for k in 0..n2 {
                for j in 0..n3 {
                    out[i * n3 + j] += a[i * n2 + k] * b[k * n3 + j];
                }
            }
        }
        out
    }

    fn assert_close(got: &[f64], want: &[f64]) {
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            assert!((g - w).abs() < 1e-9, "got {g}, want {w}");
        }
    }

    #[test]
    fn all_kernels_agree_with_reference() {
        let (n1, n2, n3) = (20, 13, 17); // ragged vs 8x8 tiles
        let av: Vec<f64> = (0..n1 * n2).map(|i| (i as f64).sin()).collect();
        let bv: Vec<f64> = (0..n2 * n3).map(|i| (i as f64).cos()).collect();
        let want = reference(&av, &bv, n1, n2, n3);
        for kernel in [
            MatMulKernel::Naive,
            MatMulKernel::Bnlj,
            MatMulKernel::SquareTiled,
        ] {
            let c = ctx(64);
            let a = mk(&c, n1, n2, MatrixLayout::Square, |i, j| av[i * n2 + j]);
            let b = mk(&c, n2, n3, MatrixLayout::Square, |i, j| bv[i * n3 + j]);
            let (t, flops) = multiply(kernel, &a, &b, 3 * 64, None).unwrap();
            assert_eq!(flops, (n1 * n2 * n3) as u64, "{kernel:?}");
            assert_close(&t.to_rows().unwrap(), &want);
        }
    }

    #[test]
    fn kernels_work_across_layouts() {
        let (n1, n2, n3) = (16, 16, 16);
        let av: Vec<f64> = (0..n1 * n2).map(|i| (i % 11) as f64).collect();
        let bv: Vec<f64> = (0..n2 * n3).map(|i| (i % 7) as f64).collect();
        let want = reference(&av, &bv, n1, n2, n3);
        let c = ctx(64);
        let a = mk(&c, n1, n2, MatrixLayout::RowMajor, |i, j| av[i * n2 + j]);
        let b = mk(&c, n2, n3, MatrixLayout::ColMajor, |i, j| bv[i * n3 + j]);
        for kernel in [
            MatMulKernel::Naive,
            MatMulKernel::Bnlj,
            MatMulKernel::SquareTiled,
        ] {
            let (t, _) = multiply(kernel, &a, &b, 3 * 64, None).unwrap();
            assert_close(&t.to_rows().unwrap(), &want);
        }
    }

    #[test]
    fn parallel_kernels_match_sequential_results_and_io() {
        let (n1, n2, n3) = (40, 33, 25); // ragged shapes
        let av: Vec<f64> = (0..n1 * n2)
            .map(|i| ((i * 13) % 31) as f64 - 15.0)
            .collect();
        let bv: Vec<f64> = (0..n2 * n3).map(|i| ((i * 7) % 23) as f64 - 11.0).collect();
        let want = reference(&av, &bv, n1, n2, n3);

        // Pool large enough to hold everything: the in-memory regime where
        // parallel totals must equal sequential totals exactly.
        let run = |threads: usize| {
            let c = StorageCtx::new_mem_sharded(512, 256, 8);
            let a = mk(&c, n1, n2, MatrixLayout::Square, |i, j| av[i * n2 + j]);
            let b = mk(&c, n2, n3, MatrixLayout::Square, |i, j| bv[i * n3 + j]);
            c.pool().flush_all().unwrap();
            c.clear_cache().unwrap();
            let before = c.io_snapshot();
            let (t, flops) = matmul_tiled_parallel(&a, &b, 3 * 4 * 64 * 4, threads, None).unwrap();
            c.pool().flush_all().unwrap();
            let delta = c.io_snapshot() - before;
            (t.to_rows().unwrap(), flops, delta.reads, delta.writes)
        };

        let (seq, seq_flops, seq_reads, seq_writes) = run(1);
        assert_close(&seq, &want);
        for threads in [2, 4] {
            let (par, par_flops, par_reads, par_writes) = run(threads);
            assert_eq!(par, seq, "{threads}-thread result diverged");
            assert_eq!(par_flops, seq_flops);
            assert_eq!(par_reads, seq_reads, "{threads}-thread reads diverged");
            assert_eq!(par_writes, seq_writes, "{threads}-thread writes diverged");
        }

        // BNLJ likewise.
        let run_bnlj = |threads: usize| {
            let c = StorageCtx::new_mem_sharded(512, 256, 8);
            let a = mk(&c, n1, n2, MatrixLayout::RowMajor, |i, j| av[i * n2 + j]);
            let b = mk(&c, n2, n3, MatrixLayout::ColMajor, |i, j| bv[i * n3 + j]);
            c.pool().flush_all().unwrap();
            c.clear_cache().unwrap();
            let before = c.io_snapshot();
            let (t, _) = matmul_bnlj_parallel(&a, &b, 8 * (n2 + n3) * 4, threads, None).unwrap();
            c.pool().flush_all().unwrap();
            let delta = c.io_snapshot() - before;
            (t.to_rows().unwrap(), delta.reads, delta.writes)
        };
        let (seq, seq_reads, seq_writes) = run_bnlj(1);
        assert_close(&seq, &want);
        let (par, par_reads, par_writes) = run_bnlj(4);
        assert_eq!(par, seq);
        assert_eq!((par_reads, par_writes), (seq_reads, seq_writes));
    }

    #[test]
    fn tiled_kernel_io_beats_naive_colmajor() {
        // The §3 story, measured: same multiplication, tiny memory; naive
        // over column layouts must move far more blocks than square-tiled
        // over square layouts.
        let n = 32;
        let run = |layout: MatrixLayout, kernel: MatMulKernel| -> u64 {
            let c = ctx(6); // 6 frames: severe pressure
            let a = mk(&c, n, n, layout, |i, j| (i + j) as f64);
            let b = mk(&c, n, n, layout, |i, j| (i * j % 5) as f64);
            c.pool().flush_all().unwrap();
            c.clear_cache().unwrap();
            let before = c.io_snapshot();
            let (t, _) = multiply(kernel, &a, &b, 6 * 64, None).unwrap();
            c.pool().flush_all().unwrap();
            let delta = c.io_snapshot() - before;
            drop(t);
            delta.total_blocks()
        };
        let naive = run(MatrixLayout::ColMajor, MatMulKernel::Naive);
        let tiled = run(MatrixLayout::Square, MatMulKernel::SquareTiled);
        assert!(
            naive > 4 * tiled,
            "naive {naive} should dwarf tiled {tiled}"
        );
    }

    #[test]
    fn bnlj_io_between_naive_and_tiled() {
        let n = 32;
        let run = |layouts: (MatrixLayout, MatrixLayout), kernel: MatMulKernel| -> u64 {
            let c = ctx(6);
            let a = mk(&c, n, n, layouts.0, |i, j| (i + j) as f64);
            let b = mk(&c, n, n, layouts.1, |i, j| (i * 2 + j) as f64);
            c.pool().flush_all().unwrap();
            c.clear_cache().unwrap();
            let before = c.io_snapshot();
            let (t, _) = multiply(kernel, &a, &b, 6 * 64, None).unwrap();
            c.pool().flush_all().unwrap();
            let delta = c.io_snapshot() - before;
            drop(t);
            delta.total_blocks()
        };
        // BNLJ with its favourable layouts (row for A, col for B).
        let bnlj = run(
            (MatrixLayout::RowMajor, MatrixLayout::ColMajor),
            MatMulKernel::Bnlj,
        );
        let naive = run(
            (MatrixLayout::ColMajor, MatrixLayout::ColMajor),
            MatMulKernel::Naive,
        );
        assert!(bnlj < naive, "bnlj {bnlj} < naive {naive}");
    }

    #[test]
    fn chain_execution_matches_reference_and_frees_temps() {
        let c = ctx(64);
        let dims = [12usize, 4, 10, 6];
        let mats: Vec<DenseMatrix> = (0..3)
            .map(|m| {
                mk(&c, dims[m], dims[m + 1], MatrixLayout::Square, |i, j| {
                    ((i * 31 + j * 17 + m * 7) % 13) as f64
                })
            })
            .collect();
        // Reference result.
        let datas: Vec<Vec<f64>> = mats.iter().map(|m| m.to_rows().unwrap()).collect();
        let ab = reference(&datas[0], &datas[1], dims[0], dims[1], dims[2]);
        let abc = reference(&ab, &datas[2], dims[0], dims[2], dims[3]);
        let live_before = c.live_objects();
        for tree in crate::opt::all_orders(3) {
            let (out, flops) =
                multiply_chain(&tree, &mats, MatMulKernel::SquareTiled, 3 * 64).unwrap();
            assert_eq!(flops as f64, tree.flops(&dims), "{}", tree.render());
            assert_close(&out.to_rows().unwrap(), &abc);
            out.free().unwrap();
            assert_eq!(
                c.live_objects(),
                live_before,
                "temps freed: {}",
                tree.render()
            );
        }
    }

    #[test]
    fn tiled_measured_io_matches_cost_model_shape() {
        // Appendix A validation at small scale: measured blocks within 2x
        // of the analytic schedule cost.
        let n = 48; // 6x6 tiles of 8x8
        let mem_elems = 3 * 4 * 64; // p = 16 -> 2x2-tile submatrices
                                    // Tiny pass-through pool: the kernel's explicit submatrix buffers
                                    // are the memory budget, so device I/O equals the schedule.
        let c = ctx(4);
        let a = mk(&c, n, n, MatrixLayout::Square, |i, j| (i + j) as f64);
        let b = mk(&c, n, n, MatrixLayout::Square, |i, j| (i * j % 3) as f64);
        c.pool().flush_all().unwrap();
        c.clear_cache().unwrap();
        let before = c.io_snapshot();
        let (t, _) = multiply(MatMulKernel::SquareTiled, &a, &b, mem_elems, None).unwrap();
        c.pool().flush_all().unwrap();
        let delta = c.io_snapshot() - before;
        drop(t);
        let params = crate::cost::CostParams {
            mem_elems: mem_elems as f64,
            block_elems: 64.0,
        };
        let predicted = crate::cost::square_tiled_io(n as f64, n as f64, n as f64, params);
        let measured = delta.total_blocks() as f64;
        assert!(
            measured <= 2.0 * predicted && measured >= predicted / 2.0,
            "measured {measured} vs predicted {predicted:.1}"
        );
    }
}
