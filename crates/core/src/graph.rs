//! The expression graph: an arena of hash-consed nodes with shape
//! inference and reachability utilities.
//!
//! Hash-consing gives common-subexpression elimination for free: building
//! `(x - xs)^2` twice yields the same [`NodeId`], so the executor computes
//! shared work once — the DAG sharing the paper gets from SQL view reuse.

use std::collections::HashMap;
use std::sync::Arc;

use crate::expr::{AggOp, BinOp, ExprError, Node, NodeId, SourceRef, UnOp};
use crate::shape::Shape;

/// Arena of expression nodes with structural sharing.
#[derive(Default)]
pub struct ExprGraph {
    nodes: Vec<Node>,
    shapes: Vec<Shape>,
    intern: HashMap<Vec<u8>, NodeId>,
}

impl ExprGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct nodes ever created.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node behind `id`.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// The inferred shape of `id`.
    pub fn shape(&self, id: NodeId) -> Shape {
        self.shapes[id.0 as usize]
    }

    /// Intern `node` with shape `shape`, reusing an existing identical node.
    fn intern(&mut self, node: Node, shape: Shape) -> NodeId {
        let key = node.key();
        if let Some(&id) = self.intern.get(&key) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.shapes.push(shape);
        self.intern.insert(key, id);
        id
    }

    // ---- leaf builders -------------------------------------------------

    /// A stored vector of `len` elements.
    pub fn vec_source(&mut self, source: SourceRef, len: usize) -> NodeId {
        self.intern(Node::VecSource { source, len }, Shape::Vector(len))
    }

    /// A stored `rows x cols` matrix.
    pub fn mat_source(&mut self, source: SourceRef, rows: usize, cols: usize) -> NodeId {
        self.intern(
            Node::MatSource { source, rows, cols },
            Shape::Matrix(rows, cols),
        )
    }

    /// A stored `rows x cols` block-compressed sparse matrix with `nnz`
    /// stored non-zeros.
    pub fn sp_mat_source(
        &mut self,
        source: SourceRef,
        rows: usize,
        cols: usize,
        nnz: u64,
    ) -> NodeId {
        self.intern(
            Node::SpMatSource {
                source,
                rows,
                cols,
                nnz,
            },
            Shape::Matrix(rows, cols),
        )
    }

    /// A small in-memory literal vector.
    pub fn literal(&mut self, values: Vec<f64>) -> NodeId {
        let shape = Shape::Vector(values.len());
        self.intern(Node::Literal(Arc::new(values)), shape)
    }

    /// A scalar constant.
    pub fn scalar(&mut self, value: f64) -> NodeId {
        self.intern(Node::Scalar(value), Shape::Scalar)
    }

    /// The integer sequence `start .. start+len-1` (R's `a:b`).
    pub fn range(&mut self, start: i64, len: usize) -> NodeId {
        self.intern(Node::Range { start, len }, Shape::Vector(len))
    }

    // ---- operator builders ---------------------------------------------

    /// Unary elementwise map.
    pub fn map(&mut self, op: UnOp, input: NodeId) -> NodeId {
        let shape = self.shape(input);
        self.intern(Node::Map { op, input }, shape)
    }

    /// Binary elementwise op with R recycling.
    pub fn zip(&mut self, op: BinOp, lhs: NodeId, rhs: NodeId) -> Result<NodeId, ExprError> {
        let (ls, rs) = (self.shape(lhs), self.shape(rhs));
        if !ls.broadcasts_with(&rs) {
            return Err(ExprError::ShapeMismatch {
                lhs: ls,
                rhs: rs,
                op: op.name(),
            });
        }
        let shape = ls.broadcast(&rs);
        Ok(self.intern(Node::Zip { op, lhs, rhs }, shape))
    }

    /// Elementwise conditional select.
    pub fn if_else(&mut self, cond: NodeId, yes: NodeId, no: NodeId) -> Result<NodeId, ExprError> {
        let (cs, ys, ns) = (self.shape(cond), self.shape(yes), self.shape(no));
        if !cs.broadcasts_with(&ys) || !cs.broadcasts_with(&ns) || !ys.broadcasts_with(&ns) {
            return Err(ExprError::ShapeMismatch {
                lhs: ys,
                rhs: ns,
                op: "ifelse",
            });
        }
        let shape = cs.broadcast(&ys).broadcast(&ns);
        Ok(self.intern(Node::IfElse { cond, yes, no }, shape))
    }

    /// Subscript read `data[index]`.
    pub fn gather(&mut self, data: NodeId, index: NodeId) -> Result<NodeId, ExprError> {
        let ds = self.shape(data);
        let is = self.shape(index);
        if !matches!(ds, Shape::Vector(_)) {
            return Err(ExprError::Expected {
                what: "vector",
                got: ds,
            });
        }
        let out_len = match is {
            Shape::Vector(n) => n,
            Shape::Scalar => 1,
            other => {
                return Err(ExprError::Expected {
                    what: "index vector",
                    got: other,
                })
            }
        };
        Ok(self.intern(Node::Gather { data, index }, Shape::Vector(out_len)))
    }

    /// Functional update `data[index] <- value`.
    pub fn sub_assign(
        &mut self,
        data: NodeId,
        index: NodeId,
        value: NodeId,
    ) -> Result<NodeId, ExprError> {
        let ds = self.shape(data);
        if !matches!(ds, Shape::Vector(_)) {
            return Err(ExprError::Expected {
                what: "vector",
                got: ds,
            });
        }
        let is = self.shape(index);
        let vs = self.shape(value);
        if !is.broadcasts_with(&vs) {
            return Err(ExprError::ShapeMismatch {
                lhs: is,
                rhs: vs,
                op: "[<-",
            });
        }
        Ok(self.intern(Node::SubAssign { data, index, value }, ds))
    }

    /// Functional masked update `data[mask] <- value`.
    pub fn mask_assign(
        &mut self,
        data: NodeId,
        mask: NodeId,
        value: NodeId,
    ) -> Result<NodeId, ExprError> {
        let ds = self.shape(data);
        let ms = self.shape(mask);
        if !matches!(ds, Shape::Vector(_)) {
            return Err(ExprError::Expected {
                what: "vector",
                got: ds,
            });
        }
        if ds != ms && ms != Shape::Scalar {
            return Err(ExprError::ShapeMismatch {
                lhs: ds,
                rhs: ms,
                op: "[mask<-",
            });
        }
        let vs = self.shape(value);
        if !ds.broadcasts_with(&vs) {
            return Err(ExprError::ShapeMismatch {
                lhs: ds,
                rhs: vs,
                op: "[mask<-",
            });
        }
        Ok(self.intern(Node::MaskAssign { data, mask, value }, ds))
    }

    /// Matrix multiplication.
    pub fn matmul(&mut self, lhs: NodeId, rhs: NodeId) -> Result<NodeId, ExprError> {
        let (ls, rs) = (self.shape(lhs), self.shape(rhs));
        match (ls, rs) {
            (Shape::Matrix(r1, c1), Shape::Matrix(r2, c2)) if c1 == r2 => {
                Ok(self.intern(Node::MatMul { lhs, rhs }, Shape::Matrix(r1, c2)))
            }
            _ => Err(ExprError::MatMulDims { lhs: ls, rhs: rs }),
        }
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, input: NodeId) -> Result<NodeId, ExprError> {
        match self.shape(input) {
            Shape::Matrix(r, c) => Ok(self.intern(Node::Transpose { input }, Shape::Matrix(c, r))),
            got => Err(ExprError::Expected {
                what: "matrix",
                got,
            }),
        }
    }

    /// Matrix transpose planned on the sparse kernel (the optimizer's
    /// below-threshold choice for sparse-valued inputs).
    pub fn sp_transpose(&mut self, input: NodeId) -> Result<NodeId, ExprError> {
        match self.shape(input) {
            Shape::Matrix(r, c) => {
                Ok(self.intern(Node::SpTranspose { input }, Shape::Matrix(c, r)))
            }
            got => Err(ExprError::Expected {
                what: "matrix",
                got,
            }),
        }
    }

    /// Sparse-to-dense conversion of a matrix-valued node.
    pub fn densify(&mut self, input: NodeId) -> Result<NodeId, ExprError> {
        match self.shape(input) {
            s @ Shape::Matrix(..) => Ok(self.intern(Node::Densify { input }, s)),
            got => Err(ExprError::Expected {
                what: "matrix",
                got,
            }),
        }
    }

    /// Dense-to-sparse compression of a matrix-valued node.
    pub fn sparsify(&mut self, input: NodeId) -> Result<NodeId, ExprError> {
        match self.shape(input) {
            s @ Shape::Matrix(..) => Ok(self.intern(Node::Sparsify { input }, s)),
            got => Err(ExprError::Expected {
                what: "matrix",
                got,
            }),
        }
    }

    /// Scalar reduction.
    pub fn agg(&mut self, op: AggOp, input: NodeId) -> NodeId {
        self.intern(Node::Agg { op, input }, Shape::Scalar)
    }

    /// Cholesky factorization of a square matrix-valued node. The shape
    /// check is structural (square, non-empty); positive definiteness is
    /// a value property checked at execution time.
    pub fn chol(&mut self, input: NodeId) -> Result<NodeId, ExprError> {
        match self.shape(input) {
            s @ Shape::Matrix(r, c) if r == c && r > 0 => Ok(self.intern(Node::Chol { input }, s)),
            got => Err(ExprError::Expected {
                what: "non-empty square matrix",
                got,
            }),
        }
    }

    /// Linear solve `solve(a, b)`: `a` square `n x n`, `b` an `n x m`
    /// right-hand side.
    pub fn solve(&mut self, lhs: NodeId, rhs: NodeId) -> Result<NodeId, ExprError> {
        let (ls, rs) = (self.shape(lhs), self.shape(rhs));
        match (ls, rs) {
            (Shape::Matrix(n1, n2), Shape::Matrix(r, m))
                if n1 == n2 && n1 > 0 && r == n1 && m > 0 =>
            {
                Ok(self.intern(Node::Solve { lhs, rhs }, Shape::Matrix(n1, m)))
            }
            (Shape::Matrix(n1, n2), _) if n1 != n2 || n1 == 0 => Err(ExprError::Expected {
                what: "non-empty square matrix",
                got: ls,
            }),
            _ => Err(ExprError::MatMulDims { lhs: ls, rhs: rs }),
        }
    }

    // ---- analysis ------------------------------------------------------

    /// All nodes reachable from `roots`, in topological (children-first)
    /// order.
    pub fn reachable(&self, roots: &[NodeId]) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut order = Vec::new();
        let mut stack: Vec<(NodeId, bool)> = roots.iter().rev().map(|&r| (r, false)).collect();
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                order.push(id);
                continue;
            }
            if seen[id.0 as usize] {
                continue;
            }
            seen[id.0 as usize] = true;
            stack.push((id, true));
            for child in self.node(id).children().into_iter().rev() {
                if !seen[child.0 as usize] {
                    stack.push((child, false));
                }
            }
        }
        order
    }

    /// Number of references to each node from within the sub-DAG reachable
    /// from `roots` (roots get one extra count as externally referenced).
    pub fn ref_counts(&self, roots: &[NodeId]) -> HashMap<NodeId, usize> {
        let mut counts: HashMap<NodeId, usize> = HashMap::new();
        for id in self.reachable(roots) {
            for c in self.node(id).children() {
                *counts.entry(c).or_insert(0) += 1;
            }
        }
        for &r in roots {
            *counts.entry(r).or_insert(0) += 1;
        }
        counts
    }

    /// Render `id` as an R-like expression string (cycles impossible:
    /// graphs are acyclic by construction).
    pub fn render(&self, id: NodeId) -> String {
        match self.node(id) {
            Node::VecSource { source, .. } => format!("v{}", source.0),
            Node::MatSource { source, .. } => format!("m{}", source.0),
            Node::SpMatSource { source, .. } => format!("sp{}", source.0),
            Node::Densify { input } => format!("as.dense({})", self.render(*input)),
            Node::Sparsify { input } => format!("as.sparse({})", self.render(*input)),
            Node::Literal(v) => {
                if v.len() <= 4 {
                    format!(
                        "c({})",
                        v.iter()
                            .map(|x| format!("{x}"))
                            .collect::<Vec<_>>()
                            .join(",")
                    )
                } else {
                    format!("c(<{} values>)", v.len())
                }
            }
            Node::Scalar(x) => format!("{x}"),
            Node::Range { start, len } => format!("{}:{}", start, start + *len as i64 - 1),
            Node::Map { op, input } => match op {
                UnOp::Neg => format!("-{}", self.render(*input)),
                UnOp::Square => format!("{}^2", self.render(*input)),
                _ => format!("{}({})", op.name(), self.render(*input)),
            },
            Node::Zip { op, lhs, rhs } => match op {
                BinOp::Min | BinOp::Max => {
                    format!(
                        "{}({}, {})",
                        op.name(),
                        self.render(*lhs),
                        self.render(*rhs)
                    )
                }
                _ => format!(
                    "({} {} {})",
                    self.render(*lhs),
                    op.name(),
                    self.render(*rhs)
                ),
            },
            Node::IfElse { cond, yes, no } => format!(
                "ifelse({}, {}, {})",
                self.render(*cond),
                self.render(*yes),
                self.render(*no)
            ),
            Node::Gather { data, index } => {
                format!("{}[{}]", self.render(*data), self.render(*index))
            }
            Node::SubAssign { data, index, value } => format!(
                "`[<-`({}, {}, {})",
                self.render(*data),
                self.render(*index),
                self.render(*value)
            ),
            Node::MaskAssign { data, mask, value } => format!(
                "`[<-`({}, {}, {})",
                self.render(*data),
                self.render(*mask),
                self.render(*value)
            ),
            Node::MatMul { lhs, rhs } => {
                format!("({} %*% {})", self.render(*lhs), self.render(*rhs))
            }
            Node::Transpose { input } => format!("t({})", self.render(*input)),
            Node::SpTranspose { input } => format!("t({})", self.render(*input)),
            Node::Agg { op, input } => format!("{}({})", op.name(), self.render(*input)),
            Node::Chol { input } => format!("chol({})", self.render(*input)),
            Node::Solve { lhs, rhs } => {
                format!("solve({}, {})", self.render(*lhs), self.render(*rhs))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> ExprGraph {
        ExprGraph::new()
    }

    #[test]
    fn hash_consing_dedupes() {
        let mut g = graph();
        let x = g.vec_source(SourceRef(0), 10);
        let a = g.zip(BinOp::Add, x, x).unwrap();
        let b = g.zip(BinOp::Add, x, x).unwrap();
        assert_eq!(a, b);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn shape_inference_through_pipeline() {
        let mut g = graph();
        let x = g.vec_source(SourceRef(0), 8);
        let c = g.scalar(3.0);
        let s = g.zip(BinOp::Sub, x, c).unwrap();
        assert_eq!(g.shape(s), Shape::Vector(8));
        let sq = g.map(UnOp::Square, s);
        assert_eq!(g.shape(sq), Shape::Vector(8));
        let total = g.agg(AggOp::Sum, sq);
        assert_eq!(g.shape(total), Shape::Scalar);
    }

    #[test]
    fn zip_rejects_bad_shapes() {
        let mut g = graph();
        let a = g.vec_source(SourceRef(0), 5);
        let b = g.vec_source(SourceRef(1), 3);
        assert!(g.zip(BinOp::Add, a, b).is_err());
        // Recycling allowed when lengths divide.
        let c = g.vec_source(SourceRef(2), 10);
        assert!(g.zip(BinOp::Add, a, c).is_ok());
    }

    #[test]
    fn matmul_shapes() {
        let mut g = graph();
        let a = g.mat_source(SourceRef(0), 3, 4);
        let b = g.mat_source(SourceRef(1), 4, 5);
        let ab = g.matmul(a, b).unwrap();
        assert_eq!(g.shape(ab), Shape::Matrix(3, 5));
        assert!(g.matmul(b, a).is_err());
        let t = g.transpose(ab).unwrap();
        assert_eq!(g.shape(t), Shape::Matrix(5, 3));
    }

    #[test]
    fn gather_shape_follows_index() {
        let mut g = graph();
        let d = g.vec_source(SourceRef(0), 100);
        let idx = g.literal(vec![1.0, 5.0, 7.0]);
        let z = g.gather(d, idx).unwrap();
        assert_eq!(g.shape(z), Shape::Vector(3));
    }

    #[test]
    fn mask_assign_requires_aligned_mask() {
        let mut g = graph();
        let d = g.vec_source(SourceRef(0), 10);
        let m_bad = g.vec_source(SourceRef(1), 4);
        let hundred = g.scalar(100.0);
        assert!(g.mask_assign(d, m_bad, hundred).is_err());
        let m_ok = g.zip(BinOp::Gt, d, hundred).unwrap();
        let b = g.mask_assign(d, m_ok, hundred).unwrap();
        assert_eq!(g.shape(b), Shape::Vector(10));
    }

    #[test]
    fn reachable_is_topological() {
        let mut g = graph();
        let x = g.vec_source(SourceRef(0), 4);
        let y = g.vec_source(SourceRef(1), 4);
        let s = g.zip(BinOp::Add, x, y).unwrap();
        let q = g.map(UnOp::Sqrt, s);
        let order = g.reachable(&[q]);
        let pos = |id: NodeId| order.iter().position(|&n| n == id).expect("node in order");
        assert!(pos(x) < pos(s));
        assert!(pos(y) < pos(s));
        assert!(pos(s) < pos(q));
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn ref_counts_shared_nodes() {
        let mut g = graph();
        let x = g.vec_source(SourceRef(0), 4);
        let sq = g.map(UnOp::Square, x);
        let sum = g.zip(BinOp::Add, sq, sq).unwrap();
        let counts = g.ref_counts(&[sum]);
        assert_eq!(counts[&sq], 2);
        assert_eq!(counts[&sum], 1);
    }

    #[test]
    fn render_example_1_line() {
        // d <- sqrt((x-xs)^2 + (y-ys)^2): check the pretty printer shape.
        let mut g = graph();
        let x = g.vec_source(SourceRef(0), 4);
        let y = g.vec_source(SourceRef(1), 4);
        let xs = g.scalar(1.0);
        let ys = g.scalar(2.0);
        let dx = g.zip(BinOp::Sub, x, xs).unwrap();
        let dy = g.zip(BinOp::Sub, y, ys).unwrap();
        let dx2 = g.map(UnOp::Square, dx);
        let dy2 = g.map(UnOp::Square, dy);
        let sum = g.zip(BinOp::Add, dx2, dy2).unwrap();
        let d = g.map(UnOp::Sqrt, sum);
        assert_eq!(g.render(d), "sqrt(((v0 - 1)^2 + (v1 - 2)^2))");
    }
}
