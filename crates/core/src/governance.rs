//! Leak-audit helpers for the leak-free-abort pinned invariant.
//!
//! A governance abort — cancellation, a tripped budget, or a pin-wait
//! timeout — may fire at *any* checkpoint of *any* query, so the test
//! suite needs one uniform way to assert that an aborted query released
//! everything it held: no frame left pinned, every temporary extent
//! freed, the catalog's allocation state byte-identical to the moment
//! before the query started. [`LeakSnapshot`] captures that state and
//! [`assert_no_leaks`] compares against it; the cancel-at-every-
//! checkpoint sweep calls the pair around every abort point.

use crate::session::Session;

/// Storage state captured before a query, compared after an abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakSnapshot {
    /// Canonical rendering of every live catalog object and its extents
    /// (see `StorageCtx::catalog_fingerprint`).
    pub catalog: String,
    /// Frames pinned at snapshot time (0 between queries).
    pub pinned_frames: usize,
}

/// Capture the session's storage-allocation state.
pub fn leak_snapshot(session: &Session) -> LeakSnapshot {
    let ctx = session.storage_ctx();
    LeakSnapshot {
        catalog: ctx.catalog_fingerprint(),
        pinned_frames: ctx.pool().pinned_frames(),
    }
}

/// Assert the session leaked nothing since `before` was captured:
/// zero pinned frames now, and a catalog fingerprint byte-identical to
/// the snapshot. Panics with a diff-friendly message otherwise — `at`
/// names the abort point for the failure message.
pub fn assert_no_leaks(session: &Session, before: &LeakSnapshot, at: &str) {
    let now = leak_snapshot(session);
    assert_eq!(
        now.pinned_frames, 0,
        "{at}: {} frame(s) still pinned after abort",
        now.pinned_frames
    );
    assert_eq!(
        now.catalog, before.catalog,
        "{at}: catalog changed across an aborted query\n--- before ---\n{}\n--- after ---\n{}",
        before.catalog, now.catalog
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{EngineConfig, EngineKind};

    #[test]
    fn snapshot_is_stable_across_pure_reads() {
        let s = Session::new(EngineConfig::new(EngineKind::Riot));
        let x = s.vector_from_fn(256, |i| i as f64).unwrap();
        let snap = leak_snapshot(&s);
        assert_eq!(snap.pinned_frames, 0);
        let _ = x.sum().unwrap();
        // An aggregate materializes nothing under Riot at this size.
        assert_no_leaks(&s, &snap, "aggregate");
    }
}
