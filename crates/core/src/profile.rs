//! Query profiles and EXPLAIN: the reproduction's answer to the paper's
//! DTrace instrumentation.
//!
//! The paper diagnoses each strategy by *watching* its I/O (Figure 1's
//! DTrace traces distinguish R's scattered paging from MySQL's "bulky and
//! sequential" scans). This module turns the engine's own trace stream
//! ([`riot_trace`]) into the same kind of evidence, structured:
//!
//! * [`QueryProfile`] — everything observed while profiling one region:
//!   a span tree ([`ProfileNode`]) of forcing points and kernels with
//!   per-span counted I/O, flops, and wall time; the buffer-pool counter
//!   delta; and every typed storage event (misses, evictions, prefetch
//!   hits/waste, retries, corruption).
//! * [`render_plan`] — an EXPLAIN text tree over the expression DAG (the
//!   logical plan the optimizer chose), independent of execution.
//! * Three renderers on the profile: [`QueryProfile::render_tree`]
//!   (EXPLAIN-style tree with measurements), [`QueryProfile::render_flat`]
//!   (one metric per line), and [`QueryProfile::to_chrome_json`]
//!   (load the file in `chrome://tracing` / Perfetto for a timeline).
//!
//! The profile's accounting invariant: the root node's metrics are the
//! *measured* counter deltas for the profiled region — span metrics
//! nest inside it, so summing [`ProfileNode::self_metrics`] over the tree
//! reproduces the root totals exactly.

use std::collections::HashMap;
use std::fmt::Write as _;

use riot_storage::{DiskModel, IoSnapshot, PoolStats};
use riot_trace::{Event, EventKind, Metrics};

use crate::expr::{Node, NodeId};
use crate::graph::ExprGraph;
use crate::shape::Shape;

/// One node of the measured span tree: a forcing point, kernel, or spill,
/// with the counter deltas observed while it (inclusively) ran.
#[derive(Debug, Clone)]
pub struct ProfileNode {
    /// Span name (`collect`, `matmul`, `spmm`, `materialize`, ...).
    pub name: String,
    /// Free-form detail (rendered expression, dimensions).
    pub detail: String,
    /// Start, nanoseconds from the tracer's origin.
    pub start_ns: u64,
    /// Inclusive wall-clock duration.
    pub dur_ns: u64,
    /// Inclusive counter deltas (children included).
    pub metrics: Metrics,
    /// Nested spans, in start order.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Metrics attributable to this node alone: inclusive minus the sum
    /// of the children's inclusive metrics (saturating — concurrent
    /// children may overlap).
    pub fn self_metrics(&self) -> Metrics {
        let mut kids = Metrics::default();
        for c in &self.children {
            kids = kids.plus(&c.metrics);
        }
        self.metrics.minus(&kids)
    }

    /// This node plus all descendants.
    pub fn count(&self) -> usize {
        1 + self.children.iter().map(ProfileNode::count).sum::<usize>()
    }

    fn sum_self(&self, acc: &mut Metrics) {
        *acc = acc.plus(&self.self_metrics());
        for c in &self.children {
            c.sum_self(acc);
        }
    }
}

/// The structured result of profiling one region of execution.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    /// Engine label the region ran under (e.g. `"RIOT-DB"`).
    pub engine: String,
    /// Span tree. The root is synthetic (`"query"`) and carries the
    /// **measured** total counter deltas for the whole region.
    pub root: ProfileNode,
    /// Buffer-pool counter delta over the region.
    pub pool: PoolStats,
    /// Typed non-span events, in drain order (pool misses, evictions,
    /// prefetch traffic, retries, corruption, plan/rewrite decisions).
    pub events: Vec<Event>,
    /// Events the bounded ring had to drop (0 in healthy runs).
    pub dropped: u64,
}

impl QueryProfile {
    /// Assemble a profile from a drained event stream plus the measured
    /// region totals. `total` becomes the root node's metrics, so the
    /// tree's accounting invariant holds by construction.
    pub fn assemble(
        engine: String,
        events: Vec<Event>,
        total: Metrics,
        pool: PoolStats,
        wall_ns: u64,
        dropped: u64,
    ) -> Self {
        let mut spans = Vec::new();
        let mut rest = Vec::new();
        for ev in events {
            match ev.kind {
                EventKind::Span(s) => spans.push(s),
                _ => rest.push(ev),
            }
        }
        // Completed-span events arrive in end order; reassemble by parent
        // id. A span whose parent never completed (or predates the drain)
        // becomes a root child.
        let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
        let mut by_parent: HashMap<u64, Vec<riot_trace::SpanData>> = HashMap::new();
        for s in spans {
            let key = if ids.contains(&s.parent) { s.parent } else { 0 };
            by_parent.entry(key).or_default().push(s);
        }
        fn build(
            id: u64,
            data: (String, String, u64, u64, Metrics),
            by_parent: &mut HashMap<u64, Vec<riot_trace::SpanData>>,
        ) -> ProfileNode {
            let mut children: Vec<ProfileNode> = by_parent
                .remove(&id)
                .unwrap_or_default()
                .into_iter()
                .map(|s| {
                    build(
                        s.id,
                        (
                            s.name.to_string(),
                            s.detail.into_string(),
                            s.start_ns,
                            s.dur_ns,
                            s.metrics,
                        ),
                        by_parent,
                    )
                })
                .collect();
            children.sort_by_key(|c| c.start_ns);
            ProfileNode {
                name: data.0,
                detail: data.1,
                start_ns: data.2,
                dur_ns: data.3,
                metrics: data.4,
                children,
            }
        }
        let start = by_parent
            .values()
            .flatten()
            .map(|s| s.start_ns)
            .min()
            .unwrap_or(0);
        let root = build(
            0,
            ("query".to_string(), String::new(), start, wall_ns, total),
            &mut by_parent,
        );
        QueryProfile {
            engine,
            root,
            pool,
            events: rest,
            dropped,
        }
    }

    /// The measured region totals (the root node's metrics).
    pub fn total(&self) -> Metrics {
        self.root.metrics
    }

    /// Sum of [`ProfileNode::self_metrics`] over the whole tree — equals
    /// [`QueryProfile::total`] by the accounting invariant.
    pub fn sum_self(&self) -> Metrics {
        let mut acc = Metrics::default();
        self.root.sum_self(&mut acc);
        acc
    }

    /// The region's counted I/O as an [`IoSnapshot`] (what the engine's
    /// `io_snapshot()` delta reports for the same region).
    pub fn io(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.root.metrics.reads,
            writes: self.root.metrics.writes,
            seq_reads: self.root.metrics.seq_reads,
            seq_writes: self.root.metrics.seq_writes,
            bytes_read: self.root.metrics.bytes_read,
            bytes_written: self.root.metrics.bytes_written,
            syncs: 0,
        }
    }

    /// Modeled elapsed seconds for the region under `model` — the
    /// Figure 1(b) accounting applied to one query instead of a session.
    pub fn modeled_seconds(&self, model: &DiskModel) -> f64 {
        model.modeled_seconds(&self.io(), self.root.metrics.flops)
    }

    /// Number of typed (non-span) events with the given label
    /// (`"pool_miss"`, `"retry_read"`, `"corruption"`, ... — see
    /// [`EventKind::label`]).
    pub fn event_count(&self, label: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind.label() == label)
            .count()
    }

    /// EXPLAIN-style tree with per-span measurements and wall times.
    pub fn render_tree(&self) -> String {
        self.render_tree_opts(true)
    }

    /// The same tree without wall-clock timings: every remaining number
    /// is a deterministic counter, so the output is stable across runs
    /// (what the golden-file test pins).
    pub fn render_counts(&self) -> String {
        self.render_tree_opts(false)
    }

    fn render_tree_opts(&self, timings: bool) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "QUERY PROFILE [{}]", self.engine);
        render_node(&mut out, &self.root, "", true, true, timings);
        let _ = writeln!(out, "{}", self.pool);
        if self.dropped > 0 {
            let _ = writeln!(out, "trace: {} events dropped (ring full)", self.dropped);
        }
        out
    }

    /// Flat dump: one metric per line, then typed-event counts. Every
    /// line is deterministic for a deterministic workload.
    pub fn render_flat(&self) -> String {
        let m = &self.root.metrics;
        let mut out = String::new();
        let _ = writeln!(out, "engine         {}", self.engine);
        let _ = writeln!(out, "spans          {}", self.root.count() - 1);
        let _ = writeln!(out, "reads          {}", m.reads);
        let _ = writeln!(out, "seq_reads      {}", m.seq_reads);
        let _ = writeln!(out, "rand_reads     {}", m.rand_reads());
        let _ = writeln!(out, "writes         {}", m.writes);
        let _ = writeln!(out, "seq_writes     {}", m.seq_writes);
        let _ = writeln!(out, "rand_writes    {}", m.rand_writes());
        let _ = writeln!(out, "bytes_read     {}", m.bytes_read);
        let _ = writeln!(out, "bytes_written  {}", m.bytes_written);
        let _ = writeln!(out, "flops          {}", m.flops);
        let _ = writeln!(out, "pool_hits      {}", self.pool.hits);
        let _ = writeln!(out, "pool_misses    {}", self.pool.misses);
        let _ = writeln!(out, "hit_rate       {:.4}", self.pool.hit_rate());
        let mut counts: HashMap<&'static str, usize> = HashMap::new();
        for e in &self.events {
            *counts.entry(e.kind.label()).or_default() += 1;
        }
        let mut labels: Vec<_> = counts.into_iter().collect();
        labels.sort();
        for (label, n) in labels {
            let _ = writeln!(out, "event:{label:<15} {n}");
        }
        out
    }

    /// Chrome trace-event JSON (the `chrome://tracing` / Perfetto array
    /// format): spans become complete (`"X"`) events, typed events become
    /// instants (`"i"`). Timestamps are microseconds from the tracer
    /// origin.
    pub fn to_chrome_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        fn span_json(out: &mut Vec<String>, n: &ProfileNode) {
            out.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                 \"pid\":0,\"tid\":0,\"args\":{{\"detail\":\"{}\",\"reads\":{},\"writes\":{},\
                 \"flops\":{}}}}}",
                esc(&n.name),
                n.start_ns as f64 / 1000.0,
                n.dur_ns as f64 / 1000.0,
                esc(&n.detail),
                n.metrics.reads,
                n.metrics.writes,
                n.metrics.flops
            ));
            for c in &n.children {
                span_json(out, c);
            }
        }
        let mut items = Vec::new();
        span_json(&mut items, &self.root);
        for e in &self.events {
            items.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"storage\",\"ph\":\"i\",\"ts\":{:.3},\
                 \"pid\":0,\"tid\":{},\"s\":\"t\"}}",
                e.kind.label(),
                e.ts_ns as f64 / 1000.0,
                e.thread
            ));
        }
        format!("[{}]", items.join(",\n"))
    }
}

fn render_node(
    out: &mut String,
    n: &ProfileNode,
    prefix: &str,
    last: bool,
    root: bool,
    timings: bool,
) {
    let (branch, cont) = if root {
        ("", "")
    } else if last {
        ("└─ ", "   ")
    } else {
        ("├─ ", "│  ")
    };
    let m = &n.metrics;
    let mut line = format!("{prefix}{branch}{}", n.name);
    if !n.detail.is_empty() {
        let _ = write!(line, "  {}", n.detail);
    }
    let _ = write!(
        line,
        "  [{} reads ({} seq) / {} writes ({} seq), {} flops]",
        m.reads, m.seq_reads, m.writes, m.seq_writes, m.flops
    );
    if timings {
        let _ = write!(line, "  {:.3}ms", n.dur_ns as f64 / 1e6);
    }
    let _ = writeln!(out, "{line}");
    let child_prefix = format!("{prefix}{cont}");
    for (i, c) in n.children.iter().enumerate() {
        render_node(
            out,
            c,
            &child_prefix,
            i + 1 == n.children.len(),
            false,
            timings,
        );
    }
}

// ================= logical-plan EXPLAIN =================

/// Render the expression DAG rooted at `root` as an EXPLAIN text tree —
/// the *logical* plan (what the optimizer chose), as opposed to the
/// *measured* tree a [`QueryProfile`] carries. Shared subexpressions
/// print once per reference, as the executor's tree-shaped pipeline sees
/// them.
pub fn render_plan(graph: &ExprGraph, root: NodeId) -> String {
    let mut out = String::new();
    plan_node(&mut out, graph, root, "", true, true);
    out
}

fn plan_label(graph: &ExprGraph, id: NodeId) -> String {
    let shape = match graph.shape(id) {
        Shape::Scalar => "scalar".to_string(),
        Shape::Vector(n) => format!("vec[{n}]"),
        Shape::Matrix(r, c) => format!("mat[{r}x{c}]"),
    };
    let what = match graph.node(id) {
        Node::VecSource { source, .. } => format!("scan v{}", source.0),
        Node::MatSource { source, .. } => format!("scan m{}", source.0),
        Node::SpMatSource { source, nnz, .. } => format!("scan sparse s{} nnz={nnz}", source.0),
        Node::Densify { .. } => "densify".to_string(),
        Node::Sparsify { .. } => "sparsify".to_string(),
        Node::Literal(v) => format!("literal n={}", v.len()),
        Node::Scalar(c) => format!("const {c}"),
        Node::Range { start, len } => format!("range {start}..+{len}"),
        Node::Map { op, .. } => format!("map {}", op.name()),
        Node::Zip { op, .. } => format!("zip {}", op.name()),
        Node::IfElse { .. } => "ifelse".to_string(),
        Node::Gather { .. } => "gather".to_string(),
        Node::SubAssign { .. } => "subassign".to_string(),
        Node::MaskAssign { .. } => "maskassign".to_string(),
        Node::MatMul { .. } => "matmul".to_string(),
        Node::Transpose { .. } => "transpose".to_string(),
        Node::SpTranspose { .. } => "sptranspose".to_string(),
        Node::Agg { op, .. } => format!("agg {}", op.name()),
        Node::Chol { .. } => "chol".to_string(),
        Node::Solve { .. } => "solve".to_string(),
    };
    format!("{what}  -> {shape}")
}

fn plan_node(
    out: &mut String,
    graph: &ExprGraph,
    id: NodeId,
    prefix: &str,
    last: bool,
    root: bool,
) {
    let (branch, cont) = if root {
        ("", "")
    } else if last {
        ("└─ ", "   ")
    } else {
        ("├─ ", "│  ")
    };
    let _ = writeln!(out, "{prefix}{branch}{}", plan_label(graph, id));
    let children = graph.node(id).children();
    let child_prefix = format!("{prefix}{cont}");
    for (i, c) in children.iter().enumerate() {
        plan_node(
            out,
            graph,
            *c,
            &child_prefix,
            i + 1 == children.len(),
            false,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riot_trace::{SpanData, Tracer};

    fn span(id: u64, parent: u64, name: &'static str, start: u64, reads: u64) -> Event {
        Event {
            ts_ns: start,
            thread: 0,
            kind: EventKind::Span(SpanData {
                id,
                parent,
                name,
                detail: String::new().into_boxed_str(),
                start_ns: start,
                dur_ns: 10,
                metrics: Metrics {
                    reads,
                    ..Metrics::default()
                },
            }),
        }
    }

    #[test]
    fn assembles_nested_spans_under_measured_root() {
        // Child (id 2) completes before parent (id 1): end-order arrival.
        let events = vec![
            span(2, 1, "inner", 5, 3),
            span(1, 0, "outer", 0, 7),
            Event {
                ts_ns: 1,
                thread: 0,
                kind: EventKind::PoolMiss { block: 9 },
            },
        ];
        let total = Metrics {
            reads: 11,
            ..Metrics::default()
        };
        let p = QueryProfile::assemble("test".into(), events, total, PoolStats::default(), 100, 0);
        assert_eq!(p.root.children.len(), 1);
        assert_eq!(p.root.children[0].name, "outer");
        assert_eq!(p.root.children[0].children[0].name, "inner");
        assert_eq!(p.event_count("pool_miss"), 1);
        // Accounting invariant: self-sums reproduce the measured total.
        assert_eq!(p.sum_self().reads, 11);
        // outer self = 7 - 3, inner self = 3, root self = 11 - 7.
        assert_eq!(p.root.children[0].self_metrics().reads, 4);
    }

    #[test]
    fn orphan_spans_attach_to_the_root() {
        let events = vec![span(5, 99, "lost-parent", 3, 1)];
        let p = QueryProfile::assemble(
            "test".into(),
            events,
            Metrics::default(),
            PoolStats::default(),
            10,
            0,
        );
        assert_eq!(p.root.children.len(), 1);
        assert_eq!(p.root.children[0].name, "lost-parent");
    }

    #[test]
    fn renderers_cover_tree_flat_and_chrome() {
        let events = vec![span(1, 0, "collect", 0, 2)];
        let p = QueryProfile::assemble(
            "RIOT-DB".into(),
            events,
            Metrics {
                reads: 2,
                ..Metrics::default()
            },
            PoolStats {
                hits: 3,
                misses: 1,
                ..PoolStats::default()
            },
            50,
            0,
        );
        let tree = p.render_tree();
        assert!(tree.contains("QUERY PROFILE [RIOT-DB]"), "{tree}");
        assert!(tree.contains("collect"), "{tree}");
        assert!(tree.contains("ms"), "timed render has wall clock: {tree}");
        let counts = p.render_counts();
        assert!(!counts.contains("ms"), "deterministic render: {counts}");
        let flat = p.render_flat();
        assert!(flat.contains("reads          2"), "{flat}");
        assert!(flat.contains("hit_rate       0.7500"), "{flat}");
        let json = p.to_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
    }

    #[test]
    fn modeled_seconds_uses_the_disk_model() {
        let p = QueryProfile::assemble(
            "t".into(),
            vec![],
            Metrics {
                reads: 100,
                seq_reads: 100,
                ..Metrics::default()
            },
            PoolStats::default(),
            1,
            0,
        );
        let m = DiskModel::default();
        let secs = p.modeled_seconds(&m);
        assert!((secs - 100.0 * m.seq_ms / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn tracer_round_trip_assembles() {
        let t = Tracer::new();
        t.enable();
        let outer = t.begin_span("outer");
        let inner = t.begin_span("inner");
        t.end_span(inner, "i".to_string(), Metrics::default());
        t.end_span(outer, "o".to_string(), Metrics::default());
        let p = QueryProfile::assemble(
            "t".into(),
            t.drain(),
            Metrics::default(),
            PoolStats::default(),
            1,
            0,
        );
        assert_eq!(p.root.children.len(), 1);
        assert_eq!(p.root.children[0].children.len(), 1);
        assert_eq!(p.root.count(), 3);
    }
}
