//! The user-facing, R-like API: transparency in action.
//!
//! A [`Session`] plays the role of the R interpreter plus the RIOT
//! package: programs are written once against [`RVec`]/[`RMat`] handles
//! (operator overloading mirrors R's generics dispatch of §4, "Interfacing
//! with R") and run unchanged under any [`EngineKind`]. Under eager
//! engines every operator call computes immediately; under deferred
//! engines it builds DAG nodes, and computation happens at forcing points
//! (`collect`, `sum`, assignment for MatNamed).
//!
//! ```
//! use riot_core::{EngineConfig, EngineKind, Session};
//!
//! let s = Session::new(EngineConfig::new(EngineKind::Riot));
//! let x = s.vector_from_fn(1000, |i| i as f64).unwrap();
//! let d = ((&x - 3.0).square() + 1.0).sqrt();
//! let idx = s.sample(1000, 5).unwrap();
//! let z = d.index(&idx);
//! let values = z.collect().unwrap();
//! assert_eq!(values.len(), 5);
//! ```

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Instant;

use riot_array::MatrixLayout;
use riot_storage::{CancelToken, DiskModel, IoSnapshot, PoolStats, ResourceLimits, StorageReport};
use riot_trace::Metrics;

use crate::exec::{ExecError, ExecResult};
use crate::expr::{AggOp, BinOp, UnOp};
use crate::opt::RewriteStats;
use crate::policy::{EngineConfig, EngineKind, MatRepr, Runtime, VecRepr};
use crate::profile::QueryProfile;

/// An interactive session bound to one engine.
#[derive(Clone)]
pub struct Session {
    rt: Rc<RefCell<Runtime>>,
}

impl Session {
    /// Start a session with `cfg`.
    pub fn new(cfg: EngineConfig) -> Self {
        Session {
            rt: Rc::new(RefCell::new(Runtime::new(cfg))),
        }
    }

    /// Shorthand: default configuration for `kind`.
    pub fn with_engine(kind: EngineKind) -> Self {
        Session::new(EngineConfig::new(kind))
    }

    /// Start a session over an existing storage context — typically a
    /// durable one from [`riot_array::StorageCtx::open`], so named objects
    /// written by an earlier session can be [`Session::open_vector`]ed or
    /// [`Session::open_matrix`]ed back. `cfg.block_size` must match the
    /// context's block size.
    pub fn with_ctx(cfg: EngineConfig, ctx: Arc<riot_array::StorageCtx>) -> Self {
        Session {
            rt: Rc::new(RefCell::new(Runtime::with_ctx(cfg, ctx))),
        }
    }

    /// The engine this session runs.
    pub fn kind(&self) -> EngineKind {
        self.rt.borrow().cfg.kind
    }

    // ---- resource governance & cancellation ----

    /// Start a session with `cfg` and `limits` attached: every forcing
    /// point runs as a governed query (see [`Session::set_limits`]).
    pub fn with_limits(cfg: EngineConfig, limits: ResourceLimits) -> Self {
        let s = Session::new(cfg);
        s.set_limits(limits);
        s
    }

    /// Attach per-query resource `limits` and turn governance
    /// checkpoints on. Each forcing point (collect, aggregate, an eager
    /// engine's operator, …) then runs as one governed query: budgets
    /// are measured from the start of that query, and exceeding one —
    /// or a pending cancel — aborts it with a typed
    /// [`ExecError::BudgetExceeded`] / [`ExecError::Cancelled`], leaving
    /// no pinned frames and no leaked storage behind. `ResourceLimits::
    /// none()` engages checkpoint accounting with nothing to trip.
    pub fn set_limits(&self, limits: ResourceLimits) {
        self.rt.borrow().storage_ctx().governor().engage(limits);
    }

    /// Detach limits: checkpoints return to the ungoverned fast path
    /// (one relaxed atomic load). A pending cancel stays pending.
    pub fn clear_limits(&self) {
        self.rt.borrow().storage_ctx().governor().disengage();
    }

    /// The currently attached limits (all-`None` when disengaged).
    pub fn limits(&self) -> ResourceLimits {
        self.rt.borrow().storage_ctx().governor().limits()
    }

    /// A cloneable, `Send` handle that cancels this session's running
    /// query from another thread. With limits attached (even
    /// [`ResourceLimits::none`]), the query aborts at its next kernel
    /// checkpoint; otherwise cancellation is observed at the next
    /// [`Session::interrupt_checkpoint`] (the R interpreter calls that
    /// between statements).
    pub fn cancel_handle(&self) -> CancelToken {
        self.rt.borrow().storage_ctx().governor().cancel_token()
    }

    /// Clear a pending cancel so the session can run further queries.
    pub fn reset_cancel(&self) {
        self.rt.borrow().storage_ctx().governor().reset_cancel();
    }

    /// Observe a pending cancellation outside any kernel — the
    /// statement-boundary seam: returns [`ExecError::Cancelled`] if a
    /// [`CancelToken`] has fired, `Ok(())` otherwise.
    pub fn interrupt_checkpoint(&self) -> ExecResult<()> {
        if self.rt.borrow().storage_ctx().governor().is_cancelled() {
            return Err(ExecError::Cancelled {
                at: "interp.statement",
            });
        }
        Ok(())
    }

    /// The session's storage context (pool, catalog, and governor) —
    /// the leak-audit helpers in [`crate::governance`] snapshot it.
    pub fn storage_ctx(&self) -> Arc<riot_array::StorageCtx> {
        self.rt.borrow().storage_ctx()
    }

    /// Create a vector from a generator function.
    pub fn vector_from_fn(&self, len: usize, f: impl FnMut(usize) -> f64) -> ExecResult<RVec> {
        let repr = self.rt.borrow_mut().load_vector(len, None, f)?;
        Ok(self.vec(repr))
    }

    /// Create a vector from a generator function, registered in the
    /// catalog under `name` so a later session over the same (durable)
    /// storage can [`Session::open_vector`] it. Plain R has no
    /// catalog-backed storage and ignores the name.
    pub fn vector_from_fn_named(
        &self,
        name: &str,
        len: usize,
        f: impl FnMut(usize) -> f64,
    ) -> ExecResult<RVec> {
        let repr = self.rt.borrow_mut().load_vector(len, Some(name), f)?;
        Ok(self.vec(repr))
    }

    /// Reopen a named stored vector (see [`Session::vector_from_fn_named`]).
    pub fn open_vector(&self, name: &str) -> ExecResult<RVec> {
        let repr = self.rt.borrow_mut().open_vector(name)?;
        Ok(self.vec(repr))
    }

    /// Create a vector from a slice.
    pub fn vector_from_slice(&self, data: &[f64]) -> ExecResult<RVec> {
        self.vector_from_fn(data.len(), |i| data[i])
    }

    /// Create a matrix from a generator function, stored with `layout`.
    pub fn matrix_from_fn(
        &self,
        rows: usize,
        cols: usize,
        layout: MatrixLayout,
        f: impl FnMut(usize, usize) -> f64,
    ) -> ExecResult<RMat> {
        let repr = self
            .rt
            .borrow_mut()
            .load_matrix(rows, cols, layout, None, f)?;
        Ok(self.mat(repr))
    }

    /// Create a matrix from a generator function, registered in the
    /// catalog under `name` for later reopening ([`Session::open_matrix`]).
    pub fn matrix_from_fn_named(
        &self,
        name: &str,
        rows: usize,
        cols: usize,
        layout: MatrixLayout,
        f: impl FnMut(usize, usize) -> f64,
    ) -> ExecResult<RMat> {
        let repr = self
            .rt
            .borrow_mut()
            .load_matrix(rows, cols, layout, Some(name), f)?;
        Ok(self.mat(repr))
    }

    /// Reopen a named stored matrix, dense or sparse — the catalog
    /// header's object kind decides which physical reader runs.
    pub fn open_matrix(&self, name: &str) -> ExecResult<RMat> {
        let repr = self.rt.borrow_mut().open_matrix(name)?;
        Ok(self.mat(repr))
    }

    /// Create a sparse matrix from COO triplets `(row, col, value)`
    /// (0-based; duplicates sum, explicit zeros drop) — the engine-side
    /// counterpart of R's `Matrix::sparseMatrix`. Deferred engines store
    /// the block-compressed format and let the optimizer pick sparse or
    /// dense kernels from the density; eager engines densify at load, so
    /// the same program runs everywhere.
    pub fn sparse_matrix(
        &self,
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> ExecResult<RMat> {
        let repr = self
            .rt
            .borrow_mut()
            .load_sparse(rows, cols, None, triplets)?;
        Ok(self.mat(repr))
    }

    /// [`Session::sparse_matrix`], registered in the catalog under `name`
    /// for later reopening. Eager engines store the densified form; the
    /// reopen path densifies on read instead, so results agree.
    pub fn sparse_matrix_named(
        &self,
        name: &str,
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> ExecResult<RMat> {
        let repr = self
            .rt
            .borrow_mut()
            .load_sparse(rows, cols, Some(name), triplets)?;
        Ok(self.mat(repr))
    }

    /// R's `sample(n, k)`: k distinct indices in `1..=n`.
    pub fn sample(&self, n: usize, k: usize) -> ExecResult<RVec> {
        let repr = self.rt.borrow_mut().sample(n, k)?;
        Ok(self.vec(repr))
    }

    /// A small in-memory vector — R's `c(...)`. Unlike
    /// [`Session::vector_from_slice`] this is *not* a stored source: under
    /// deferred engines the optimizer sees the literal values.
    pub fn literal(&self, values: &[f64]) -> ExecResult<RVec> {
        let repr = self.rt.borrow_mut().literal(values.to_vec())?;
        Ok(self.vec(repr))
    }

    /// R's `start:end` sequence.
    pub fn range(&self, start: i64, end: i64) -> ExecResult<RVec> {
        let repr = self.rt.borrow_mut().range(start, end)?;
        Ok(self.vec(repr))
    }

    /// R's `ifelse(cond, yes, no)` elementwise conditional.
    pub fn ifelse(&self, cond: &RVec, yes: &RVec, no: &RVec) -> ExecResult<RVec> {
        let repr = self
            .rt
            .borrow_mut()
            .ifelse(&cond.repr, &yes.repr, &no.repr)?;
        Ok(self.vec(repr))
    }

    /// Bind a name to a vector — R's `name <- value`. Under MatNamed this
    /// is the materialization point; under Riot it is free.
    pub fn assign(&self, _name: &str, v: &RVec) -> ExecResult<RVec> {
        self.rt.borrow_mut().assign(&v.repr)?;
        self.rt.borrow_mut().retain(&v.repr);
        Ok(RVec {
            sess: self.clone(),
            repr: v.repr.clone(),
        })
    }

    /// Combined I/O so far (buffer pool + paging heap).
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.rt.borrow().io_snapshot()
    }

    /// Flush and empty the buffer-pool cache so the next phase starts
    /// cold (measurement hygiene between load and query).
    pub fn drop_caches(&self) -> ExecResult<()> {
        self.rt.borrow().drop_caches()
    }

    /// Scalar operations so far.
    pub fn cpu_ops(&self) -> u64 {
        self.rt.borrow().cpu_ops()
    }

    /// Modeled elapsed time for the session's I/O + CPU (Figure 1(b)).
    pub fn modeled_seconds(&self, model: &DiskModel) -> f64 {
        self.rt.borrow().modeled_seconds(model)
    }

    /// Optimizer statistics from the most recent forcing point.
    pub fn last_opt_stats(&self) -> RewriteStats {
        self.rt.borrow().last_opt_stats
    }

    /// Buffer-pool cache-effectiveness counters so far.
    pub fn pool_stats(&self) -> PoolStats {
        self.rt.borrow().pool_stats()
    }

    /// Folded storage counters so far: counted I/O plus pool counters
    /// (see [`StorageReport`]).
    pub fn storage_report(&self) -> StorageReport {
        self.rt.borrow().storage_report()
    }

    /// Profile one region of this session: tracing turns on, `f` runs,
    /// and everything observed — the span tree of forcing points and
    /// kernels, the counted-I/O / flop / pool-counter deltas, every typed
    /// storage event — comes back as a structured [`QueryProfile`].
    ///
    /// The profile's root totals are the *measured* deltas for the region
    /// (identical to bracketing `f` with [`Session::io_snapshot`] /
    /// [`Session::cpu_ops`] yourself), so its accounting always reconciles
    /// with the engine's own counters. If tracing was off before the call
    /// it is off again after; counted I/O is unaffected either way.
    pub fn profile<R>(&self, f: impl FnOnce() -> R) -> (R, QueryProfile) {
        let (tracer, engine, was_enabled, io0, ops0, pool0) = {
            let rt = self.rt.borrow();
            let tracer = Arc::clone(rt.tracer());
            let was_enabled = tracer.is_enabled();
            tracer.enable();
            // Discard anything buffered before the region of interest.
            let _ = tracer.drain();
            (
                tracer,
                rt.cfg.kind.label().to_string(),
                was_enabled,
                rt.io_snapshot(),
                rt.cpu_ops(),
                rt.pool_stats(),
            )
        };
        let dropped0 = tracer.dropped();
        let t0 = Instant::now();
        let out = f();
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let events = tracer.drain();
        let (io, flops, pool, threads) = {
            let rt = self.rt.borrow();
            (
                rt.io_snapshot() - io0,
                rt.cpu_ops() - ops0,
                rt.pool_stats().delta(&pool0),
                rt.cfg.threads.max(1) as u64,
            )
        };
        if !was_enabled {
            tracer.disable();
        }
        let total = Metrics {
            reads: io.reads,
            writes: io.writes,
            seq_reads: io.seq_reads,
            seq_writes: io.seq_writes,
            bytes_read: io.bytes_read,
            bytes_written: io.bytes_written,
            flops,
            threads,
            pool_hits: pool.hits,
            pool_misses: pool.misses,
        };
        let profile = QueryProfile::assemble(
            engine,
            events,
            total,
            pool,
            wall_ns,
            tracer.dropped() - dropped0,
        );
        (out, profile)
    }

    /// EXPLAIN a deferred vector: the logical plan tree the next forcing
    /// point would execute (under Riot, after running the optimizer).
    /// Eager engines have no deferred plan and say so.
    pub fn explain(&self, v: &RVec) -> String {
        match &v.repr {
            VecRepr::Node(id) => self.rt.borrow_mut().explain(*id),
            _ => format!("<materialized> ({} evaluates eagerly)", self.kind().label()),
        }
    }

    /// EXPLAIN a deferred matrix (see [`Session::explain`]).
    pub fn explain_mat(&self, m: &RMat) -> String {
        match &m.repr {
            MatRepr::Node(id) => self.rt.borrow_mut().explain(*id),
            _ => format!("<materialized> ({} evaluates eagerly)", self.kind().label()),
        }
    }

    /// Render a deferred vector's expression as R-like text.
    pub fn render(&self, v: &RVec) -> String {
        match &v.repr {
            VecRepr::Node(id) => self.rt.borrow().graph.render(*id),
            _ => "<materialized>".to_string(),
        }
    }

    /// Render a deferred vector's expression as the §4.1 SQL view text.
    pub fn sql_view(&self, v: &RVec, view_name: &str) -> String {
        match &v.repr {
            VecRepr::Node(id) => {
                crate::sqlview::render_view(&self.rt.borrow().graph, *id, view_name)
            }
            _ => format!("-- {view_name} is a base table (eager engine)"),
        }
    }

    fn vec(&self, repr: VecRepr) -> RVec {
        RVec {
            sess: self.clone(),
            repr,
        }
    }

    fn mat(&self, repr: MatRepr) -> RMat {
        RMat {
            sess: self.clone(),
            repr,
        }
    }

    fn binop(&self, op: BinOp, l: &RVec, r: &RVec) -> RVec {
        self.try_binop(op, l, r)
            .unwrap_or_else(|e| panic!("vector operation failed: {e}"))
    }

    fn try_binop(&self, op: BinOp, l: &RVec, r: &RVec) -> ExecResult<RVec> {
        let repr = self.rt.borrow_mut().binop(op, &l.repr, &r.repr)?;
        Ok(self.vec(repr))
    }

    fn binop_scalar(&self, op: BinOp, l: &RVec, s: f64, scalar_left: bool) -> RVec {
        self.try_binop_scalar(op, l, s, scalar_left)
            .unwrap_or_else(|e| panic!("vector operation failed: {e}"))
    }

    fn try_binop_scalar(&self, op: BinOp, l: &RVec, s: f64, scalar_left: bool) -> ExecResult<RVec> {
        let repr = self
            .rt
            .borrow_mut()
            .binop_scalar(op, &l.repr, s, scalar_left)?;
        Ok(self.vec(repr))
    }

    fn unop(&self, op: UnOp, x: &RVec) -> RVec {
        self.try_unop(op, x)
            .unwrap_or_else(|e| panic!("vector operation failed: {e}"))
    }

    fn try_unop(&self, op: UnOp, x: &RVec) -> ExecResult<RVec> {
        let repr = self.rt.borrow_mut().unop(op, &x.repr)?;
        Ok(self.vec(repr))
    }
}

/// A vector handle — the reproduction's `dbvector`.
///
/// Cloning is cheap (R-style aliasing): under Plain R it bumps the heap
/// refcount; under Strawman it shares the table; under deferred engines it
/// copies a node id.
pub struct RVec {
    sess: Session,
    pub(crate) repr: VecRepr,
}

impl Clone for RVec {
    fn clone(&self) -> Self {
        self.sess.rt.borrow_mut().retain(&self.repr);
        RVec {
            sess: self.sess.clone(),
            repr: self.repr.clone(),
        }
    }
}

impl Drop for RVec {
    fn drop(&mut self) {
        // Best-effort release; skipped if the runtime is mid-borrow
        // (e.g. unwinding from a panic inside an operation).
        if let Ok(mut rt) = self.sess.rt.try_borrow_mut() {
            rt.release(&self.repr);
        }
    }
}

impl RVec {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.sess.rt.borrow().vec_len(&self.repr)
    }

    /// True for zero-length vectors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Generic elementwise binary op against another vector (the full
    /// [`BinOp`] surface; the arithmetic operators below are sugar).
    pub fn binary(&self, op: BinOp, other: &RVec) -> RVec {
        self.sess.binop(op, self, other)
    }

    /// [`binary`](Self::binary) with the error surfaced instead of a
    /// panic — what interpreters use so eager-engine governance aborts
    /// (cancellation, budgets) stay typed errors.
    pub fn try_binary(&self, op: BinOp, other: &RVec) -> ExecResult<RVec> {
        self.sess.try_binop(op, self, other)
    }

    /// Generic elementwise binary op against a scalar. `scalar_left`
    /// selects `c ∘ x` rather than `x ∘ c`.
    pub fn binary_scalar(&self, op: BinOp, c: f64, scalar_left: bool) -> RVec {
        self.sess.binop_scalar(op, self, c, scalar_left)
    }

    /// [`binary_scalar`](Self::binary_scalar), error surfaced.
    pub fn try_binary_scalar(&self, op: BinOp, c: f64, scalar_left: bool) -> ExecResult<RVec> {
        self.sess.try_binop_scalar(op, self, c, scalar_left)
    }

    /// Generic elementwise unary op.
    pub fn unary(&self, op: UnOp) -> RVec {
        self.sess.unop(op, self)
    }

    /// [`unary`](Self::unary), error surfaced.
    pub fn try_unary(&self, op: UnOp) -> ExecResult<RVec> {
        self.sess.try_unop(op, self)
    }

    /// `sqrt(x)`.
    pub fn sqrt(&self) -> RVec {
        self.sess.unop(UnOp::Sqrt, self)
    }

    /// `abs(x)`.
    pub fn abs(&self) -> RVec {
        self.sess.unop(UnOp::Abs, self)
    }

    /// `exp(x)`.
    pub fn exp(&self) -> RVec {
        self.sess.unop(UnOp::Exp, self)
    }

    /// `log(x)` (natural).
    pub fn ln(&self) -> RVec {
        self.sess.unop(UnOp::Ln, self)
    }

    /// `x^2`, as R programs spell it.
    pub fn square(&self) -> RVec {
        self.sess.binop_scalar(BinOp::Pow, self, 2.0, false)
    }

    /// `x^p`.
    pub fn pow(&self, p: f64) -> RVec {
        self.sess.binop_scalar(BinOp::Pow, self, p, false)
    }

    /// Elementwise comparison against a scalar: `x > c` etc.
    pub fn gt(&self, c: f64) -> RVec {
        self.sess.binop_scalar(BinOp::Gt, self, c, false)
    }

    /// `x < c`.
    pub fn lt(&self, c: f64) -> RVec {
        self.sess.binop_scalar(BinOp::Lt, self, c, false)
    }

    /// `x >= c`.
    pub fn ge(&self, c: f64) -> RVec {
        self.sess.binop_scalar(BinOp::Ge, self, c, false)
    }

    /// `x <= c`.
    pub fn le(&self, c: f64) -> RVec {
        self.sess.binop_scalar(BinOp::Le, self, c, false)
    }

    /// Logical negation: `!x` (0 becomes 1, nonzero becomes 0).
    pub fn not(&self) -> RVec {
        self.sess.unop(UnOp::Not, self)
    }

    /// Elementwise comparison against another vector.
    pub fn gt_vec(&self, other: &RVec) -> RVec {
        self.sess.binop(BinOp::Gt, self, other)
    }

    /// `x <= y` elementwise.
    pub fn le_vec(&self, other: &RVec) -> RVec {
        self.sess.binop(BinOp::Le, self, other)
    }

    /// R's `pmin(x, y)`: elementwise minimum.
    pub fn pmin(&self, other: &RVec) -> RVec {
        self.sess.binop(BinOp::Min, self, other)
    }

    /// R's `pmax(x, y)`: elementwise maximum.
    pub fn pmax(&self, other: &RVec) -> RVec {
        self.sess.binop(BinOp::Max, self, other)
    }

    /// Subscript read: `x[idx]` (1-based indices).
    pub fn index(&self, idx: &RVec) -> RVec {
        self.try_index(idx)
            .unwrap_or_else(|e| panic!("subscript failed: {e}"))
    }

    /// [`index`](Self::index), error surfaced.
    pub fn try_index(&self, idx: &RVec) -> ExecResult<RVec> {
        let repr = self.sess.rt.borrow_mut().gather(&self.repr, &idx.repr)?;
        Ok(self.sess.vec(repr))
    }

    /// Masked update returning the new state: `x[mask] <- value`.
    pub fn mask_assign(&self, mask: &RVec, value: f64) -> RVec {
        self.try_mask_assign(mask, value)
            .unwrap_or_else(|e| panic!("masked assignment failed: {e}"))
    }

    /// [`mask_assign`](Self::mask_assign), error surfaced.
    pub fn try_mask_assign(&self, mask: &RVec, value: f64) -> ExecResult<RVec> {
        let repr = self
            .sess
            .rt
            .borrow_mut()
            .mask_assign_scalar(&self.repr, &mask.repr, value)?;
        Ok(self.sess.vec(repr))
    }

    /// Masked update with a vector replacement: `x[mask] <- values`.
    pub fn mask_assign_vec(&self, mask: &RVec, values: &RVec) -> RVec {
        self.try_mask_assign_vec(mask, values)
            .unwrap_or_else(|e| panic!("masked assignment failed: {e}"))
    }

    /// [`mask_assign_vec`](Self::mask_assign_vec), error surfaced.
    pub fn try_mask_assign_vec(&self, mask: &RVec, values: &RVec) -> ExecResult<RVec> {
        let repr = self
            .sess
            .rt
            .borrow_mut()
            .mask_assign(&self.repr, &mask.repr, &values.repr)?;
        Ok(self.sess.vec(repr))
    }

    /// Indexed functional update: `x[idx] <- values` (1-based indices;
    /// `values` recycles to the index length).
    pub fn sub_assign(&self, idx: &RVec, values: &RVec) -> RVec {
        self.try_sub_assign(idx, values)
            .unwrap_or_else(|e| panic!("indexed assignment failed: {e}"))
    }

    /// [`sub_assign`](Self::sub_assign), error surfaced.
    pub fn try_sub_assign(&self, idx: &RVec, values: &RVec) -> ExecResult<RVec> {
        let repr = self
            .sess
            .rt
            .borrow_mut()
            .sub_assign(&self.repr, &idx.repr, &values.repr)?;
        Ok(self.sess.vec(repr))
    }

    /// `sum(x)` — a forcing point.
    pub fn sum(&self) -> ExecResult<f64> {
        self.sess.rt.borrow_mut().aggregate(AggOp::Sum, &self.repr)
    }

    /// `mean(x)` — a forcing point.
    pub fn mean(&self) -> ExecResult<f64> {
        self.sess.rt.borrow_mut().aggregate(AggOp::Mean, &self.repr)
    }

    /// `min(x)` — a forcing point.
    pub fn min(&self) -> ExecResult<f64> {
        self.sess.rt.borrow_mut().aggregate(AggOp::Min, &self.repr)
    }

    /// `max(x)` — a forcing point.
    pub fn max(&self) -> ExecResult<f64> {
        self.sess.rt.borrow_mut().aggregate(AggOp::Max, &self.repr)
    }

    /// Force evaluation and return all elements — R's `print`.
    pub fn collect(&self) -> ExecResult<Vec<f64>> {
        self.sess.rt.borrow_mut().collect(&self.repr)
    }

    /// EXPLAIN this vector's deferred plan — sugar for
    /// [`Session::explain`].
    pub fn explain(&self) -> String {
        self.sess.explain(self)
    }

    /// The session owning this handle.
    pub fn session(&self) -> &Session {
        &self.sess
    }
}

/// A matrix handle — the reproduction's `dbmatrix`.
pub struct RMat {
    sess: Session,
    pub(crate) repr: MatRepr,
}

impl Clone for RMat {
    fn clone(&self) -> Self {
        self.sess.rt.borrow_mut().retain_mat(&self.repr);
        RMat {
            sess: self.sess.clone(),
            repr: self.repr.clone(),
        }
    }
}

impl Drop for RMat {
    fn drop(&mut self) {
        if let Ok(mut rt) = self.sess.rt.try_borrow_mut() {
            rt.release_mat(&self.repr);
        }
    }
}

impl RMat {
    /// Matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        self.sess.rt.borrow().mat_shape(&self.repr)
    }

    /// `t(m)`: transpose.
    pub fn t(&self) -> RMat {
        self.try_t()
            .unwrap_or_else(|e| panic!("transpose failed: {e}"))
    }

    /// [`t`](Self::t), error surfaced — what interpreters use so
    /// eager-engine governance aborts stay typed errors.
    pub fn try_t(&self) -> ExecResult<RMat> {
        let repr = self.sess.rt.borrow_mut().transpose(&self.repr)?;
        Ok(self.sess.mat(repr))
    }

    /// `a %*% b`.
    pub fn matmul(&self, rhs: &RMat) -> RMat {
        self.try_matmul(rhs)
            .unwrap_or_else(|e| panic!("matrix multiplication failed: {e}"))
    }

    /// [`matmul`](Self::matmul), error surfaced.
    pub fn try_matmul(&self, rhs: &RMat) -> ExecResult<RMat> {
        let repr = self.sess.rt.borrow_mut().matmul(&self.repr, &rhs.repr)?;
        Ok(self.sess.mat(repr))
    }

    /// Number of stored non-zeros — `nnz(m)`. For a deferred sparse
    /// source this reads the catalog statistic without touching storage;
    /// anything else is a forcing point that streams the value's tiles.
    pub fn nnz(&self) -> ExecResult<u64> {
        self.sess.rt.borrow_mut().mat_nnz(&self.repr)
    }

    /// Cholesky factorization — `chol(a)`: the lower-triangular `L` with
    /// `L %*% t(L) == a` for a symmetric positive definite input. Inputs
    /// that are not positive definite surface a typed error at the forcing
    /// point, never silent NaNs.
    pub fn chol(&self) -> ExecResult<RMat> {
        let repr = self.sess.rt.borrow_mut().mat_chol(&self.repr)?;
        Ok(self.sess.mat(repr))
    }

    /// Linear solve — `solve(a, b)` for symmetric positive definite `a`.
    /// Always factorization-backed: no engine materializes an inverse.
    pub fn solve(&self, rhs: &RMat) -> ExecResult<RMat> {
        let repr = self.sess.rt.borrow_mut().mat_solve(&self.repr, &rhs.repr)?;
        Ok(self.sess.mat(repr))
    }

    /// Convert to the block-compressed sparse representation —
    /// `as.sparse(m)`. Deferred under MatNamed/Riot; the eager engines
    /// keep their dense storage (sparsity is a library concept there,
    /// exactly as in base R).
    pub fn to_sparse(&self) -> ExecResult<RMat> {
        let repr = self.sess.rt.borrow_mut().mat_to_sparse(&self.repr)?;
        Ok(self.sess.mat(repr))
    }

    /// Convert to the dense representation — `as.dense(m)`.
    pub fn to_dense(&self) -> ExecResult<RMat> {
        let repr = self.sess.rt.borrow_mut().mat_to_dense(&self.repr)?;
        Ok(self.sess.mat(repr))
    }

    /// Force evaluation: `(rows, cols, row-major data)`.
    pub fn collect(&self) -> ExecResult<(usize, usize, Vec<f64>)> {
        self.sess.rt.borrow_mut().collect_matrix(&self.repr)
    }

    /// EXPLAIN this matrix's deferred plan — sugar for
    /// [`Session::explain_mat`].
    pub fn explain(&self) -> String {
        self.sess.explain_mat(self)
    }

    /// The session owning this handle.
    pub fn session(&self) -> &Session {
        &self.sess
    }
}

// ---- operator overloading (R generics dispatch) ----

macro_rules! vec_binops {
    ($trait:ident, $method:ident, $op:expr) => {
        impl std::ops::$trait<&RVec> for &RVec {
            type Output = RVec;
            fn $method(self, rhs: &RVec) -> RVec {
                self.session().binop($op, self, rhs)
            }
        }

        impl std::ops::$trait<f64> for &RVec {
            type Output = RVec;
            fn $method(self, rhs: f64) -> RVec {
                self.session().binop_scalar($op, self, rhs, false)
            }
        }

        impl std::ops::$trait<&RVec> for f64 {
            type Output = RVec;
            fn $method(self, rhs: &RVec) -> RVec {
                rhs.session().binop_scalar($op, rhs, self, true)
            }
        }

        impl std::ops::$trait<RVec> for RVec {
            type Output = RVec;
            fn $method(self, rhs: RVec) -> RVec {
                self.session().binop($op, &self, &rhs)
            }
        }

        impl std::ops::$trait<f64> for RVec {
            type Output = RVec;
            fn $method(self, rhs: f64) -> RVec {
                self.session().binop_scalar($op, &self, rhs, false)
            }
        }
    };
}

vec_binops!(Add, add, BinOp::Add);
vec_binops!(Sub, sub, BinOp::Sub);
vec_binops!(Mul, mul, BinOp::Mul);
vec_binops!(Div, div, BinOp::Div);

impl std::ops::Neg for &RVec {
    type Output = RVec;
    fn neg(self) -> RVec {
        self.session().unop(UnOp::Neg, self)
    }
}

/// Shorthand for errors surfaced by sessions.
pub type SessionError = ExecError;

#[cfg(test)]
mod tests {
    use super::*;

    fn sessions() -> Vec<Session> {
        EngineKind::all()
            .into_iter()
            .map(Session::with_engine)
            .collect()
    }

    #[test]
    fn arithmetic_matches_across_engines() {
        for s in sessions() {
            let x = s.vector_from_fn(100, |i| i as f64).unwrap();
            let y = s.vector_from_fn(100, |i| (i * 2) as f64).unwrap();
            let z = (&x + &y) * 0.5 + 1.0;
            let got = z.collect().unwrap();
            let want: Vec<f64> = (0..100).map(|i| (i as f64 * 3.0) * 0.5 + 1.0).collect();
            assert_eq!(got, want, "engine {:?}", s.kind());
        }
    }

    #[test]
    fn example_1_identical_on_all_engines() {
        let mut outputs = Vec::new();
        for s in sessions() {
            let n = 300;
            let x = s.vector_from_fn(n, |i| (i as f64).sin() * 10.0).unwrap();
            let y = s.vector_from_fn(n, |i| (i as f64).cos() * 10.0).unwrap();
            let (xs, ys, xe, ye) = (0.0, 0.0, 3.0, 4.0);
            let d = ((&x - xs).square() + (&y - ys).square()).sqrt()
                + ((&x - xe).square() + (&y - ye).square()).sqrt();
            let d = s.assign("d", &d).unwrap();
            let sidx = s.sample(n, 17).unwrap();
            let sidx = s.assign("s", &sidx).unwrap();
            let z = d.index(&sidx);
            let z = s.assign("z", &z).unwrap();
            outputs.push(z.collect().unwrap());
        }
        // All four engines share the seed, so the sampled indices agree and
        // the numeric outputs must be identical.
        for w in outputs.windows(2) {
            assert_eq!(w[0], w[1]);
        }
        assert_eq!(outputs[0].len(), 17);
    }

    #[test]
    fn figure_2_program_identical_on_all_engines() {
        let mut outputs = Vec::new();
        for s in sessions() {
            let a = s.vector_from_fn(200, |i| i as f64 * 0.7 - 30.0).unwrap();
            let b = a.square();
            let b = s.assign("b", &b).unwrap();
            let mask = b.gt(100.0);
            let b2 = b.mask_assign(&mask, 100.0);
            let b2 = s.assign("b", &b2).unwrap();
            let first = s.range(1, 10).unwrap();
            let z = b2.index(&first);
            outputs.push(z.collect().unwrap());
        }
        for w in outputs.windows(2) {
            assert_eq!(w[0], w[1]);
        }
        for v in &outputs[0] {
            assert!(*v <= 100.0);
        }
    }

    #[test]
    fn riot_beats_matnamed_beats_strawman_on_io() {
        // The Figure 1 ordering at miniature scale.
        let n = 4096;
        let k = 16;
        let run = |kind: EngineKind| -> u64 {
            let mut cfg = EngineConfig::new(kind);
            cfg.block_size = 512; // 64 elems per block
            cfg.mem_blocks = 32; // tiny memory cap: ~2048 elements
            cfg.chunk_elems = 64;
            let s = Session::new(cfg);
            let x = s.vector_from_fn(n, |i| i as f64).unwrap();
            let y = s.vector_from_fn(n, |i| (n - i) as f64).unwrap();
            let load_io = s.io_snapshot();
            let d = ((&x - 1.0).square() + (&y - 2.0).square()).sqrt()
                + ((&x - 3.0).square() + (&y - 4.0).square()).sqrt();
            let d = s.assign("d", &d).unwrap();
            let idx = s.sample(n, k).unwrap();
            let z = d.index(&idx);
            let out = z.collect().unwrap();
            assert_eq!(out.len(), k);
            (s.io_snapshot() - load_io).total_blocks()
        };
        let strawman = run(EngineKind::Strawman);
        let matnamed = run(EngineKind::MatNamed);
        let riot = run(EngineKind::Riot);
        let plain = run(EngineKind::PlainR);
        assert!(riot < matnamed, "riot {riot} < matnamed {matnamed}");
        assert!(
            matnamed < strawman,
            "matnamed {matnamed} < strawman {strawman}"
        );
        assert!(riot * 10 < plain, "riot {riot} << plain {plain}");
    }

    #[test]
    fn riot_collect_reports_pushdown_stats() {
        let s = Session::with_engine(EngineKind::Riot);
        let a = s.vector_from_fn(500, |i| i as f64).unwrap();
        let b = a.square();
        let mask = b.gt(100.0);
        let b2 = b.mask_assign(&mask, 100.0);
        let idx = s.range(1, 10).unwrap();
        let z = b2.index(&idx);
        z.collect().unwrap();
        let stats = s.last_opt_stats();
        assert!(stats.mask_to_ifelse >= 1);
        assert!(stats.gathers_pushed >= 1);
    }

    #[test]
    fn aggregates_force_without_materializing() {
        for s in sessions() {
            let x = s.vector_from_fn(1000, |i| i as f64).unwrap();
            let y = (&x * 2.0) + 1.0;
            assert_eq!(
                y.sum().unwrap(),
                (0..1000).map(|i| 2.0 * i as f64 + 1.0).sum()
            );
            assert_eq!(y.min().unwrap(), 1.0);
            assert_eq!(y.max().unwrap(), 1999.0);
            assert!((y.mean().unwrap() - 1000.0).abs() < 1e-9);
        }
    }

    #[test]
    fn matmul_chain_consistent_across_engines() {
        let mut results = Vec::new();
        for kind in EngineKind::all() {
            let mut cfg = EngineConfig::new(kind);
            cfg.block_size = 512;
            cfg.mem_blocks = 64;
            let s = Session::new(cfg);
            let a = s
                .matrix_from_fn(12, 4, MatrixLayout::Square, |i, j| (i + j) as f64)
                .unwrap();
            let b = s
                .matrix_from_fn(4, 12, MatrixLayout::Square, |i, j| (i * j) as f64 * 0.25)
                .unwrap();
            let c = s
                .matrix_from_fn(
                    12,
                    12,
                    MatrixLayout::Square,
                    |i, j| {
                        if i == j {
                            1.0
                        } else {
                            0.0
                        }
                    },
                )
                .unwrap();
            let abc = a.matmul(&b).matmul(&c);
            let (r, ccols, data) = abc.collect().unwrap();
            assert_eq!((r, ccols), (12, 12));
            results.push(data);
        }
        for w in results.windows(2) {
            let close = w[0].iter().zip(&w[1]).all(|(a, b)| (a - b).abs() < 1e-9);
            assert!(close, "engines disagree on matmul chain");
        }
    }

    #[test]
    fn sql_view_rendering_via_session() {
        let s = Session::with_engine(EngineKind::Riot);
        let x = s.vector_from_fn(10, |i| i as f64).unwrap();
        let y = s.vector_from_fn(10, |i| i as f64).unwrap();
        let z = &x + &y;
        let sql = s.sql_view(&z, "E3");
        assert!(sql.contains("CREATE VIEW E3(I,V)"));
        let r = s.render(&z);
        assert!(r.contains('+'), "{r}");
    }

    #[test]
    fn riot_spills_shared_subexpressions_once() {
        // e = f(d) + g(d) with a large shared d: the engine must
        // materialize d once instead of recomputing it per branch, and a
        // second forcing point must reuse the spill.
        let mut cfg = EngineConfig::new(EngineKind::Riot);
        cfg.block_size = 512;
        cfg.chunk_elems = 64;
        cfg.mem_blocks = 16;
        let s = Session::new(cfg);
        let n = 4096; // 64 blocks; spill threshold is 4 chunks = 256 elems
        let x = s.vector_from_fn(n, |i| i as f64).unwrap();
        let y = s.vector_from_fn(n, |i| (2 * i) as f64).unwrap();
        let d = (&x + &y).sqrt(); // shared, non-leaf, large
        let e = &(&d * 2.0) + &(&d * 3.0);
        s.drop_caches().unwrap();
        let first = s.io_snapshot();
        let got = e.sum().unwrap();
        let want: f64 = (0..n).map(|i| 5.0 * ((3 * i) as f64).sqrt()).sum();
        assert!((got - want).abs() < 1e-6 * want.abs());
        let after_first = s.io_snapshot();
        // d was spilled: exactly one write pass of 64 blocks.
        assert_eq!((after_first - first).writes, 64, "one spill of d");
        // A second forcing point reuses the spill: no new writes, and the
        // reads come from d (64 blocks x 2 branches) not from x and y.
        let total2 = e.sum().unwrap();
        assert!((total2 - want).abs() < 1e-6 * want.abs());
        let after_second = s.io_snapshot();
        assert_eq!((after_second - after_first).writes, 0, "spill reused");
    }

    #[test]
    fn plain_r_thrashes_when_memory_is_tight() {
        let mut cfg = EngineConfig::new(EngineKind::PlainR);
        cfg.block_size = 512;
        cfg.mem_blocks = 8; // 512 elements of physical memory
        let s = Session::new(cfg);
        let n = 2048;
        let x = s.vector_from_fn(n, |i| i as f64).unwrap();
        let y = s.vector_from_fn(n, |i| i as f64).unwrap();
        let before = s.io_snapshot();
        let d = ((&x - 1.0).square() + (&y - 2.0).square()).sqrt();
        let _ = d.collect().unwrap();
        let delta = s.io_snapshot() - before;
        assert!(
            delta.total_blocks() > 0,
            "eager evaluation beyond memory must page"
        );
    }
}
