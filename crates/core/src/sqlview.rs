//! Rendering expression DAGs as the SQL views RIOT-DB builds (§4.1).
//!
//! RIOT-DB maps every deferred object to a `CREATE VIEW` whose definition
//! encapsulates the computation; complex R expressions become nested
//! SELECTs the database optimizer can pipeline. The next-generation RIOT
//! replaces views with the native expression algebra, but the rendering is
//! kept (a) as documentation of the correspondence and (b) so tests can
//! assert the construction matches the paper's examples, e.g. adding two
//! dbvectors:
//!
//! ```sql
//! CREATE VIEW E3(I,V) AS
//! SELECT E1.I, E1.V+E2.V FROM E1, E2 WHERE E1.I=E2.I
//! ```

use std::collections::HashMap;

use crate::expr::{BinOp, Node, NodeId};
use crate::graph::ExprGraph;

/// Render the expression rooted at `root` as a single (possibly deeply
/// nested) `CREATE VIEW` statement over base tables `V<source>(I,V)`.
///
/// Every intermediate view is expanded inline, which is exactly what the
/// database does when a query over a view is evaluated.
pub fn render_view(g: &ExprGraph, root: NodeId, view_name: &str) -> String {
    let mut namer = Namer::default();
    let body = select_of(g, root, &mut namer);
    format!("CREATE VIEW {view_name}(I,V) AS\n{body}")
}

/// Render the full set of named views for a program: one `CREATE VIEW` per
/// named object, in dependency order, each referencing base tables or
/// previously defined views — the incremental construction of §4.1.
pub fn render_program(g: &ExprGraph, named: &[(String, NodeId)]) -> String {
    let mut out = String::new();
    let mut namer = Namer::default();
    let mut bound: HashMap<NodeId, String> = HashMap::new();
    for (name, node) in named {
        let body = select_with_bindings(g, *node, &mut namer, &bound);
        out.push_str(&format!("CREATE VIEW {name}(I,V) AS\n{body};\n\n"));
        bound.insert(*node, name.clone());
    }
    out
}

#[derive(Default)]
struct Namer {
    next: u32,
}

impl Namer {
    fn fresh(&mut self, prefix: &str) -> String {
        self.next += 1;
        format!("{}{}", prefix, self.next)
    }
}

fn select_of(g: &ExprGraph, id: NodeId, namer: &mut Namer) -> String {
    select_with_bindings(g, id, namer, &HashMap::new())
}

/// Produce a SELECT returning columns (I, V) for node `id`.
fn select_with_bindings(
    g: &ExprGraph,
    id: NodeId,
    namer: &mut Namer,
    bound: &HashMap<NodeId, String>,
) -> String {
    if let Some(view) = bound.get(&id) {
        return format!("SELECT I, V FROM {view}");
    }
    match g.node(id) {
        Node::VecSource { source, .. } => {
            format!("SELECT I, V FROM V{}", source.0)
        }
        Node::MatSource { source, .. } => {
            // Matrices use schema (I, J, V); rendered flattened for the
            // vector-oriented view API.
            format!("SELECT I, J, V FROM M{}", source.0)
        }
        Node::SpMatSource { source, .. } => {
            // Sparse matrices ARE the relational (I, J, V) encoding — the
            // strawman stores only present cells; the native format keeps
            // that sparsity without paying the per-cell index columns.
            format!("SELECT I, J, V FROM S{}", source.0)
        }
        // Representation changes are invisible at the relational level.
        Node::Densify { input } | Node::Sparsify { input } => {
            select_with_bindings(g, *input, namer, bound)
        }
        Node::Literal(values) => {
            let rows: Vec<String> = values
                .iter()
                .enumerate()
                .map(|(i, v)| format!("SELECT {} AS I, {v} AS V", i + 1))
                .collect();
            if rows.is_empty() {
                "SELECT 0 AS I, 0 AS V WHERE 1=0".to_string()
            } else {
                rows.join(" UNION ALL ")
            }
        }
        Node::Scalar(v) => format!("SELECT 1 AS I, {v} AS V"),
        Node::Range { start, len } => format!(
            "SELECT I, I + {} AS V FROM GENERATE_SERIES(1, {len}) AS G(I)",
            start - 1
        ),
        Node::Map { op, input } => {
            let t = namer.fresh("TMP");
            let inner = select_with_bindings(g, *input, namer, bound);
            format!(
                "SELECT {t}.I, {expr} AS V\nFROM ({inner}) {t}",
                expr = op.sql(&format!("{t}.V"))
            )
        }
        Node::Zip { op, lhs, rhs } => render_binary(g, *op, *lhs, *rhs, namer, bound),
        Node::IfElse { cond, yes, no } => {
            let (tc, ty, tn) = (namer.fresh("TMP"), namer.fresh("TMP"), namer.fresh("TMP"));
            let c = select_with_bindings(g, *cond, namer, bound);
            let y = select_with_bindings(g, *yes, namer, bound);
            let n = select_with_bindings(g, *no, namer, bound);
            format!(
                "SELECT {tc}.I, CASE WHEN {tc}.V<>0 THEN {ty}.V ELSE {tn}.V END AS V\n\
                 FROM ({c}) {tc}, ({y}) {ty}, ({n}) {tn}\n\
                 WHERE {tc}.I={ty}.I AND {tc}.I={tn}.I"
            )
        }
        Node::Gather { data, index } => {
            // "dereferencing a vector with a vector of indices translates
            // cleanly to a join between them" (§4.1):
            // SELECT S.I, D.V FROM D, S WHERE D.I = S.V
            let (td, ts) = (namer.fresh("TMP"), namer.fresh("TMP"));
            let d = select_with_bindings(g, *data, namer, bound);
            let s = select_with_bindings(g, *index, namer, bound);
            format!("SELECT {ts}.I, {td}.V\nFROM ({d}) {td}, ({s}) {ts}\nWHERE {td}.I={ts}.V")
        }
        Node::SubAssign { data, index, value }
        | Node::MaskAssign {
            data,
            mask: index,
            value,
        } => {
            let is_mask = matches!(g.node(id), Node::MaskAssign { .. });
            let (td, ti, tv) = (namer.fresh("TMP"), namer.fresh("TMP"), namer.fresh("TMP"));
            let d = select_with_bindings(g, *data, namer, bound);
            let i = select_with_bindings(g, *index, namer, bound);
            let v = select_with_bindings(g, *value, namer, bound);
            if is_mask {
                format!(
                    "SELECT {td}.I, CASE WHEN {ti}.V<>0 THEN {tv}.V ELSE {td}.V END AS V\n\
                     FROM ({d}) {td}, ({i}) {ti}, ({v}) {tv}\n\
                     WHERE {td}.I={ti}.I AND {td}.I={tv}.I"
                )
            } else {
                format!(
                    "SELECT {td}.I, COALESCE({tv}.V, {td}.V) AS V\n\
                     FROM ({d}) {td} LEFT JOIN (({i}) {ti} JOIN ({v}) {tv} ON {ti}.I={tv}.I)\n\
                     ON {td}.I={ti}.V"
                )
            }
        }
        Node::MatMul { lhs, rhs } => {
            // The paper's §4.1 matrix multiplication query:
            // SELECT A.I, B.J, SUM(A.V*B.V) FROM A, B WHERE A.J=B.I
            // GROUP BY A.I, B.J
            let (ta, tb) = (namer.fresh("TMP"), namer.fresh("TMP"));
            let a = select_with_bindings(g, *lhs, namer, bound);
            let b = select_with_bindings(g, *rhs, namer, bound);
            format!(
                "SELECT {ta}.I, {tb}.J, SUM({ta}.V*{tb}.V) AS V\n\
                 FROM ({a}) {ta}, ({b}) {tb}\nWHERE {ta}.J={tb}.I\nGROUP BY {ta}.I, {tb}.J"
            )
        }
        Node::Transpose { input } | Node::SpTranspose { input } => {
            let t = namer.fresh("TMP");
            let inner = select_with_bindings(g, *input, namer, bound);
            format!("SELECT {t}.J AS I, {t}.I AS J, {t}.V\nFROM ({inner}) {t}")
        }
        Node::Agg { op, input } => {
            let t = namer.fresh("TMP");
            let inner = select_with_bindings(g, *input, namer, bound);
            let agg = match op {
                crate::expr::AggOp::Sum => "SUM",
                crate::expr::AggOp::Mean => "AVG",
                crate::expr::AggOp::Min => "MIN",
                crate::expr::AggOp::Max => "MAX",
            };
            format!("SELECT 1 AS I, {agg}({t}.V) AS V\nFROM ({inner}) {t}")
        }
        // Factorizations have no single-query relational form — they are
        // the paper's motivating example of computation SQL cannot express
        // (an iterative kernel, not a join-aggregate). The view renders a
        // table function call so the plan stays inspectable.
        Node::Chol { input } => {
            let t = namer.fresh("TMP");
            let inner = select_with_bindings(g, *input, namer, bound);
            format!("SELECT I, J, V FROM CHOL(TABLE ({inner}) {t})")
        }
        Node::Solve { lhs, rhs } => {
            let (ta, tb) = (namer.fresh("TMP"), namer.fresh("TMP"));
            let a = select_with_bindings(g, *lhs, namer, bound);
            let b = select_with_bindings(g, *rhs, namer, bound);
            format!("SELECT I, J, V FROM SOLVE(TABLE ({a}) {ta}, TABLE ({b}) {tb})")
        }
    }
}

fn render_binary(
    g: &ExprGraph,
    op: BinOp,
    lhs: NodeId,
    rhs: NodeId,
    namer: &mut Namer,
    bound: &HashMap<NodeId, String>,
) -> String {
    use crate::shape::Shape;
    // Scalar operands inline into the expression instead of joining,
    // mirroring how RIOT-DB substitutes xs/ys values into view text.
    let lscalar = matches!(g.shape(lhs), Shape::Scalar);
    let rscalar = matches!(g.shape(rhs), Shape::Scalar);
    match (lscalar, rscalar) {
        (false, true) => {
            let t = namer.fresh("TMP");
            let rv = scalar_text(g, rhs);
            let inner = select_with_bindings(g, lhs, namer, bound);
            format!(
                "SELECT {t}.I, {expr} AS V\nFROM ({inner}) {t}",
                expr = op.sql(&format!("{t}.V"), &rv)
            )
        }
        (true, false) => {
            let t = namer.fresh("TMP");
            let lv = scalar_text(g, lhs);
            let inner = select_with_bindings(g, rhs, namer, bound);
            format!(
                "SELECT {t}.I, {expr} AS V\nFROM ({inner}) {t}",
                expr = op.sql(&lv, &format!("{t}.V"))
            )
        }
        _ => {
            let (t1, t2) = (namer.fresh("TMP"), namer.fresh("TMP"));
            let l = select_with_bindings(g, lhs, namer, bound);
            let r = select_with_bindings(g, rhs, namer, bound);
            format!(
                "SELECT {t1}.I, {expr} AS V\nFROM ({l}) {t1}, ({r}) {t2}\nWHERE {t1}.I={t2}.I",
                expr = op.sql(&format!("{t1}.V"), &format!("{t2}.V"))
            )
        }
    }
}

fn scalar_text(g: &ExprGraph, id: NodeId) -> String {
    match g.node(id) {
        Node::Scalar(v) => format!("{v}"),
        _ => "(scalar)".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{SourceRef, UnOp};

    #[test]
    fn vector_addition_matches_paper_shape() {
        // add_dbvectors: SELECT E1.I, E1.V+E2.V FROM E1, E2 WHERE E1.I=E2.I
        let mut g = ExprGraph::new();
        let e1 = g.vec_source(SourceRef(1), 8);
        let e2 = g.vec_source(SourceRef(2), 8);
        let sum = g.zip(BinOp::Add, e1, e2).unwrap();
        let sql = render_view(&g, sum, "E3");
        assert!(sql.starts_with("CREATE VIEW E3(I,V) AS"));
        assert!(sql.contains("TMP1.V+TMP2.V"), "sql:\n{sql}");
        assert!(sql.contains("WHERE TMP1.I=TMP2.I"), "sql:\n{sql}");
        assert!(sql.contains("FROM V1"), "sql:\n{sql}");
    }

    #[test]
    fn scalars_inline_like_the_paper() {
        // (x - xs)^2 with xs = 3: the paper substitutes actual values.
        let mut g = ExprGraph::new();
        let x = g.vec_source(SourceRef(0), 8);
        let xs = g.scalar(3.0);
        let d = g.zip(BinOp::Sub, x, xs).unwrap();
        let sq = g.map(UnOp::Square, d);
        let sql = render_view(&g, sq, "D");
        assert!(sql.contains("-3)"), "scalar inlined: \n{sql}");
        assert!(sql.contains("POW("), "square rendered as POW:\n{sql}");
    }

    #[test]
    fn gather_renders_as_join_on_index() {
        // Z: SELECT S.I, D.V FROM D, S WHERE D.I=S.V  (§4.1)
        let mut g = ExprGraph::new();
        let d = g.vec_source(SourceRef(0), 100);
        let s = g.literal(vec![5.0, 9.0]);
        let z = g.gather(d, s).unwrap();
        let sql = render_view(&g, z, "Z");
        assert!(sql.contains("WHERE TMP1.I=TMP2.V"), "join on value:\n{sql}");
    }

    #[test]
    fn matmul_renders_group_by_plan() {
        let mut g = ExprGraph::new();
        let a = g.mat_source(SourceRef(0), 4, 4);
        let b = g.mat_source(SourceRef(1), 4, 4);
        let ab = g.matmul(a, b).unwrap();
        let sql = render_view(&g, ab, "T");
        assert!(sql.contains("SUM(TMP1.V*TMP2.V)"), "{sql}");
        assert!(sql.contains("WHERE TMP1.J=TMP2.I"), "{sql}");
        assert!(sql.contains("GROUP BY TMP1.I, TMP2.J"), "{sql}");
    }

    #[test]
    fn named_views_reference_previous_views() {
        // d <- x + y; z <- d[s]: Z's view references D, not its expansion.
        let mut g = ExprGraph::new();
        let x = g.vec_source(SourceRef(0), 10);
        let y = g.vec_source(SourceRef(1), 10);
        let d = g.zip(BinOp::Add, x, y).unwrap();
        let s = g.literal(vec![3.0]);
        let z = g.gather(d, s).unwrap();
        let sql = render_program(&g, &[("D".to_string(), d), ("Z".to_string(), z)]);
        assert!(sql.contains("CREATE VIEW D(I,V)"));
        assert!(sql.contains("CREATE VIEW Z(I,V)"));
        // The Z view selects from D by name.
        let z_part = sql.split("CREATE VIEW Z").nth(1).unwrap();
        assert!(
            z_part.contains("FROM D"),
            "Z references the D view:\n{z_part}"
        );
    }

    #[test]
    fn nested_expression_expands_inline() {
        // sqrt((x-1)^2 + (y-2)^2): one deeply nested SELECT, like the
        // paper's expanded D view.
        let mut g = ExprGraph::new();
        let x = g.vec_source(SourceRef(0), 10);
        let y = g.vec_source(SourceRef(1), 10);
        let c1 = g.scalar(1.0);
        let c2 = g.scalar(2.0);
        let dx = g.zip(BinOp::Sub, x, c1).unwrap();
        let dy = g.zip(BinOp::Sub, y, c2).unwrap();
        let dx2 = g.map(UnOp::Square, dx);
        let dy2 = g.map(UnOp::Square, dy);
        let sum = g.zip(BinOp::Add, dx2, dy2).unwrap();
        let dist = g.map(UnOp::Sqrt, sum);
        let sql = render_view(&g, dist, "D");
        assert!(sql.contains("SQRT("));
        // Two nested POW sub-selects, joined on I.
        assert_eq!(sql.matches("POW(").count(), 2, "{sql}");
        assert!(sql.matches("SELECT").count() >= 5, "deep nesting:\n{sql}");
    }

    #[test]
    fn range_and_agg_render() {
        let mut g = ExprGraph::new();
        let r = g.range(5, 10);
        let s = g.agg(crate::expr::AggOp::Sum, r);
        let sql = render_view(&g, s, "S");
        assert!(sql.contains("GENERATE_SERIES(1, 10)"));
        assert!(sql.contains("SUM("));
    }
}
