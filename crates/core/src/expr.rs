//! The RIOT expression algebra (§5 of the paper).
//!
//! Every R operation an engine defers becomes one node in a DAG. The
//! algebra treats linear-algebra operations (matrix multiply, transpose) as
//! first-class citizens — the paper argues minimalist algebras that lower
//! them to relational operators forfeit high-level optimizations — and it
//! models *modification* functionally: `b[i] <- v` is the side-effect-free
//! operator `[]<-` ([`Node::SubAssign`] / [`Node::MaskAssign`]) taking the
//! old state and returning the new, which is what lets RIOT keep deferring
//! across assignments (Figure 2).

use std::sync::Arc;

use crate::shape::Shape;

/// Identifier of a node in an [`crate::graph::ExprGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Reference to a stored array held by the engine (outside the graph, so
/// graphs stay serializable and engines own their storage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceRef(pub u32);

/// Unary elementwise operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Negation.
    Neg,
    /// Square root.
    Sqrt,
    /// Absolute value.
    Abs,
    /// `x * x` (strength-reduced from `x ^ 2`).
    Square,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Ln,
    /// Logical not (0 -> 1, nonzero -> 0).
    Not,
}

impl UnOp {
    /// Apply the operation to one scalar.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            UnOp::Neg => -x,
            UnOp::Sqrt => x.sqrt(),
            UnOp::Abs => x.abs(),
            UnOp::Square => x * x,
            UnOp::Exp => x.exp(),
            UnOp::Ln => x.ln(),
            UnOp::Not => {
                if x == 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// R-ish surface syntax (for DAG pretty-printing).
    pub fn name(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Sqrt => "sqrt",
            UnOp::Abs => "abs",
            UnOp::Square => "square",
            UnOp::Exp => "exp",
            UnOp::Ln => "log",
            UnOp::Not => "!",
        }
    }

    /// SQL rendering (for the RIOT-DB view generator).
    pub fn sql(self, arg: &str) -> String {
        match self {
            UnOp::Neg => format!("(-{arg})"),
            UnOp::Sqrt => format!("SQRT({arg})"),
            UnOp::Abs => format!("ABS({arg})"),
            UnOp::Square => format!("POW({arg},2)"),
            UnOp::Exp => format!("EXP({arg})"),
            UnOp::Ln => format!("LN({arg})"),
            UnOp::Not => format!("(CASE WHEN {arg}=0 THEN 1 ELSE 0 END)"),
        }
    }
}

/// Binary elementwise operations. Comparisons produce 0/1 logicals, as in
/// R's numeric coercion of `TRUE`/`FALSE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Exponentiation (`^`).
    Pow,
    /// Modulo with R's `%%` semantics (`x - floor(x/y)*y`).
    Mod,
    /// Elementwise minimum (`pmin`).
    Min,
    /// Elementwise maximum (`pmax`).
    Max,
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
    /// Logical and (nonzero = true).
    And,
    /// Logical or.
    Or,
}

impl BinOp {
    /// Apply the operation to two scalars.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        let t = |x: bool| if x { 1.0 } else { 0.0 };
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Pow => a.powf(b),
            BinOp::Mod => a - (a / b).floor() * b,
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
            BinOp::Eq => t(a == b),
            BinOp::Ne => t(a != b),
            BinOp::Lt => t(a < b),
            BinOp::Le => t(a <= b),
            BinOp::Gt => t(a > b),
            BinOp::Ge => t(a >= b),
            BinOp::And => t(a != 0.0 && b != 0.0),
            BinOp::Or => t(a != 0.0 || b != 0.0),
        }
    }

    /// R-ish surface syntax.
    pub fn name(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Pow => "^",
            BinOp::Mod => "%%",
            BinOp::Min => "pmin",
            BinOp::Max => "pmax",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&",
            BinOp::Or => "|",
        }
    }

    /// SQL rendering.
    pub fn sql(self, a: &str, b: &str) -> String {
        match self {
            BinOp::Add => format!("({a}+{b})"),
            BinOp::Sub => format!("({a}-{b})"),
            BinOp::Mul => format!("({a}*{b})"),
            BinOp::Div => format!("({a}/{b})"),
            BinOp::Pow => format!("POW({a},{b})"),
            BinOp::Mod => format!("MOD({a},{b})"),
            BinOp::Min => format!("LEAST({a},{b})"),
            BinOp::Max => format!("GREATEST({a},{b})"),
            BinOp::Eq => format!("(CASE WHEN {a}={b} THEN 1 ELSE 0 END)"),
            BinOp::Ne => format!("(CASE WHEN {a}<>{b} THEN 1 ELSE 0 END)"),
            BinOp::Lt => format!("(CASE WHEN {a}<{b} THEN 1 ELSE 0 END)"),
            BinOp::Le => format!("(CASE WHEN {a}<={b} THEN 1 ELSE 0 END)"),
            BinOp::Gt => format!("(CASE WHEN {a}>{b} THEN 1 ELSE 0 END)"),
            BinOp::Ge => format!("(CASE WHEN {a}>={b} THEN 1 ELSE 0 END)"),
            BinOp::And => format!("(CASE WHEN {a}<>0 AND {b}<>0 THEN 1 ELSE 0 END)"),
            BinOp::Or => format!("(CASE WHEN {a}<>0 OR {b}<>0 THEN 1 ELSE 0 END)"),
        }
    }
}

/// Whole-input reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggOp {
    /// Sum of elements.
    Sum,
    /// Arithmetic mean.
    Mean,
    /// Minimum element.
    Min,
    /// Maximum element.
    Max,
}

impl AggOp {
    /// Fold `acc` with the next value (`Mean` accumulates a sum; callers
    /// divide by the count at the end).
    pub fn fold(self, acc: f64, x: f64) -> f64 {
        match self {
            AggOp::Sum | AggOp::Mean => acc + x,
            AggOp::Min => acc.min(x),
            AggOp::Max => acc.max(x),
        }
    }

    /// Neutral starting accumulator.
    pub fn init(self) -> f64 {
        match self {
            AggOp::Sum | AggOp::Mean => 0.0,
            AggOp::Min => f64::INFINITY,
            AggOp::Max => f64::NEG_INFINITY,
        }
    }

    /// Name for printing.
    pub fn name(self) -> &'static str {
        match self {
            AggOp::Sum => "sum",
            AggOp::Mean => "mean",
            AggOp::Min => "min",
            AggOp::Max => "max",
        }
    }
}

/// One operator in the expression DAG.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A stored vector owned by the engine.
    VecSource {
        /// Engine-side storage handle.
        source: SourceRef,
        /// Number of elements.
        len: usize,
    },
    /// A stored matrix owned by the engine.
    MatSource {
        /// Engine-side storage handle.
        source: SourceRef,
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
    },
    /// A stored block-compressed sparse matrix owned by the engine. The
    /// non-zero count rides in the node so the optimizer can estimate
    /// density without touching storage (the catalog-carried statistic of
    /// the sparse subsystem).
    SpMatSource {
        /// Engine-side storage handle.
        source: SourceRef,
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
        /// Stored non-zeros.
        nnz: u64,
    },
    /// Sparse-to-dense conversion. Inserted by the optimizer when a sparse
    /// operand is too dense for the sparse kernels to pay off, and by the
    /// frontend's `as.dense`.
    Densify {
        /// Input matrix (sparse-valued).
        input: NodeId,
    },
    /// Dense-to-sparse compression (`as.sparse`).
    Sparsify {
        /// Input matrix (dense-valued).
        input: NodeId,
    },
    /// A small in-memory vector (e.g. the 100 sampled indices of Example 1
    /// — the optimizer exploits that these are known and small).
    Literal(Arc<Vec<f64>>),
    /// A scalar constant.
    Scalar(f64),
    /// The sequence `start, start+1, ..., start+len-1` (R's `a:b`).
    Range {
        /// First value.
        start: i64,
        /// Number of values.
        len: usize,
    },
    /// Unary elementwise map.
    Map {
        /// Operation.
        op: UnOp,
        /// Input node.
        input: NodeId,
    },
    /// Binary elementwise combination with R recycling.
    Zip {
        /// Operation.
        op: BinOp,
        /// Left input.
        lhs: NodeId,
        /// Right input.
        rhs: NodeId,
    },
    /// Elementwise conditional: `cond[i] != 0 ? yes[i] : no[i]`.
    IfElse {
        /// Condition (0/1 logical).
        cond: NodeId,
        /// Value when true.
        yes: NodeId,
        /// Value when false.
        no: NodeId,
    },
    /// Subscript read `data[index]` with 1-based indices.
    Gather {
        /// Vector being indexed.
        data: NodeId,
        /// Index vector.
        index: NodeId,
    },
    /// Functional indexed update: a copy of `data` where position
    /// `index[k]` holds `value[k]` (or a broadcast scalar value). This is
    /// the paper's `[]<-` operator.
    SubAssign {
        /// Old state.
        data: NodeId,
        /// 1-based positions to replace.
        index: NodeId,
        /// Replacement values.
        value: NodeId,
    },
    /// Functional masked update: where `mask[i] != 0`, take `value[i]`,
    /// else keep `data[i]` (`b[b>100] <- 100`).
    MaskAssign {
        /// Old state.
        data: NodeId,
        /// 0/1 mask, same length as `data`.
        mask: NodeId,
        /// Replacement values (broadcastable).
        value: NodeId,
    },
    /// Matrix product (`%*%`), a first-class operator.
    MatMul {
        /// Left matrix.
        lhs: NodeId,
        /// Right matrix.
        rhs: NodeId,
    },
    /// Matrix transpose (representation-generic: the executor dispatches
    /// the native sparse kernel when the forced operand is sparse).
    Transpose {
        /// Input matrix.
        input: NodeId,
    },
    /// Transpose **planned on the sparse kernel**: emitted by the
    /// optimizer for sparse-valued inputs below the density threshold, so
    /// the plan itself records that the result stays in the sparse
    /// representation (and downstream rules — e.g. the `MatMul`
    /// physical-representation choice — can see through it).
    SpTranspose {
        /// Input matrix (sparse-valued).
        input: NodeId,
    },
    /// Reduction to a scalar.
    Agg {
        /// Reduction operation.
        op: AggOp,
        /// Input node.
        input: NodeId,
    },
    /// Cholesky factorization (`chol`): the lower-triangular `L` with
    /// `L · Lᵀ = input` for a symmetric positive definite input. Executes
    /// on the out-of-core tiled POTRF/TRSM/SYRK kernel; non-positive-
    /// definite inputs surface a typed error, never NaNs.
    Chol {
        /// Input matrix (symmetric positive definite; only the lower
        /// triangle is read).
        input: NodeId,
    },
    /// Linear solve (`solve(a, b)`) for symmetric positive definite `a`:
    /// factors `a = L·Lᵀ` out of core, then blocked forward/backward
    /// triangular substitution — the inverse is never materialized.
    Solve {
        /// Coefficient matrix (symmetric positive definite).
        lhs: NodeId,
        /// Right-hand side (matrix, one column strip per solve).
        rhs: NodeId,
    },
}

impl Node {
    /// Children of this node in evaluation order.
    pub fn children(&self) -> Vec<NodeId> {
        match *self {
            Node::VecSource { .. }
            | Node::MatSource { .. }
            | Node::SpMatSource { .. }
            | Node::Literal(_)
            | Node::Scalar(_)
            | Node::Range { .. } => vec![],
            Node::Map { input, .. }
            | Node::Transpose { input }
            | Node::SpTranspose { input }
            | Node::Agg { input, .. }
            | Node::Densify { input }
            | Node::Sparsify { input }
            | Node::Chol { input } => {
                vec![input]
            }
            Node::Zip { lhs, rhs, .. } | Node::MatMul { lhs, rhs } | Node::Solve { lhs, rhs } => {
                vec![lhs, rhs]
            }
            Node::IfElse { cond, yes, no } => vec![cond, yes, no],
            Node::Gather { data, index } => vec![data, index],
            Node::SubAssign { data, index, value } => vec![data, index, value],
            Node::MaskAssign { data, mask, value } => vec![data, mask, value],
        }
    }

    /// True for nodes with no inputs (leaves of the DAG).
    pub fn is_leaf(&self) -> bool {
        self.children().is_empty()
    }

    /// Stable byte key for hash-consing (uses `f64::to_bits` so `-0.0`,
    /// `NaN` payloads etc. are distinguished deterministically).
    pub fn key(&self) -> Vec<u8> {
        let mut k = Vec::with_capacity(24);
        let push_id = |k: &mut Vec<u8>, id: NodeId| k.extend_from_slice(&id.0.to_le_bytes());
        match self {
            Node::VecSource { source, len } => {
                k.push(0);
                k.extend_from_slice(&source.0.to_le_bytes());
                k.extend_from_slice(&(*len as u64).to_le_bytes());
            }
            Node::MatSource { source, rows, cols } => {
                k.push(1);
                k.extend_from_slice(&source.0.to_le_bytes());
                k.extend_from_slice(&(*rows as u64).to_le_bytes());
                k.extend_from_slice(&(*cols as u64).to_le_bytes());
            }
            Node::Literal(v) => {
                k.push(2);
                for x in v.iter() {
                    k.extend_from_slice(&x.to_bits().to_le_bytes());
                }
            }
            Node::Scalar(x) => {
                k.push(3);
                k.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            Node::Range { start, len } => {
                k.push(4);
                k.extend_from_slice(&start.to_le_bytes());
                k.extend_from_slice(&(*len as u64).to_le_bytes());
            }
            Node::Map { op, input } => {
                k.push(5);
                k.push(*op as u8);
                push_id(&mut k, *input);
            }
            Node::Zip { op, lhs, rhs } => {
                k.push(6);
                k.push(*op as u8);
                push_id(&mut k, *lhs);
                push_id(&mut k, *rhs);
            }
            Node::IfElse { cond, yes, no } => {
                k.push(7);
                push_id(&mut k, *cond);
                push_id(&mut k, *yes);
                push_id(&mut k, *no);
            }
            Node::Gather { data, index } => {
                k.push(8);
                push_id(&mut k, *data);
                push_id(&mut k, *index);
            }
            Node::SubAssign { data, index, value } => {
                k.push(9);
                push_id(&mut k, *data);
                push_id(&mut k, *index);
                push_id(&mut k, *value);
            }
            Node::MaskAssign { data, mask, value } => {
                k.push(10);
                push_id(&mut k, *data);
                push_id(&mut k, *mask);
                push_id(&mut k, *value);
            }
            Node::MatMul { lhs, rhs } => {
                k.push(11);
                push_id(&mut k, *lhs);
                push_id(&mut k, *rhs);
            }
            Node::Transpose { input } => {
                k.push(12);
                push_id(&mut k, *input);
            }
            Node::Agg { op, input } => {
                k.push(13);
                k.push(*op as u8);
                push_id(&mut k, *input);
            }
            Node::SpMatSource {
                source,
                rows,
                cols,
                nnz,
            } => {
                k.push(14);
                k.extend_from_slice(&source.0.to_le_bytes());
                k.extend_from_slice(&(*rows as u64).to_le_bytes());
                k.extend_from_slice(&(*cols as u64).to_le_bytes());
                k.extend_from_slice(&nnz.to_le_bytes());
            }
            Node::Densify { input } => {
                k.push(15);
                push_id(&mut k, *input);
            }
            Node::Sparsify { input } => {
                k.push(16);
                push_id(&mut k, *input);
            }
            Node::SpTranspose { input } => {
                k.push(17);
                push_id(&mut k, *input);
            }
            Node::Chol { input } => {
                k.push(18);
                push_id(&mut k, *input);
            }
            Node::Solve { lhs, rhs } => {
                k.push(19);
                push_id(&mut k, *lhs);
                push_id(&mut k, *rhs);
            }
        }
        k
    }
}

/// Errors raised while building or transforming expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprError {
    /// Elementwise combination of incompatible shapes.
    ShapeMismatch {
        /// Left shape.
        lhs: Shape,
        /// Right shape.
        rhs: Shape,
        /// Operation name.
        op: &'static str,
    },
    /// Matrix multiply with mismatched inner dimensions.
    MatMulDims {
        /// Left shape.
        lhs: Shape,
        /// Right shape.
        rhs: Shape,
    },
    /// An operation that requires a vector/matrix received something else.
    Expected {
        /// What was required.
        what: &'static str,
        /// What was found.
        got: Shape,
    },
    /// Subscript index outside `1..=len` detected at execution.
    IndexOutOfBounds {
        /// Offending 1-based index value.
        index: i64,
        /// Length of the indexed vector.
        len: usize,
    },
}

impl std::fmt::Display for ExprError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExprError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch for '{op}': {lhs} vs {rhs}")
            }
            ExprError::MatMulDims { lhs, rhs } => {
                write!(f, "non-conformable matrices for %*%: {lhs} vs {rhs}")
            }
            ExprError::Expected { what, got } => write!(f, "expected {what}, got {got}"),
            ExprError::IndexOutOfBounds { index, len } => {
                write!(f, "subscript {index} out of bounds for length {len}")
            }
        }
    }
}

impl std::error::Error for ExprError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unop_semantics() {
        assert_eq!(UnOp::Neg.apply(2.0), -2.0);
        assert_eq!(UnOp::Sqrt.apply(9.0), 3.0);
        assert_eq!(UnOp::Square.apply(-3.0), 9.0);
        assert_eq!(UnOp::Not.apply(0.0), 1.0);
        assert_eq!(UnOp::Not.apply(4.0), 0.0);
    }

    #[test]
    fn binop_semantics() {
        assert_eq!(BinOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinOp::Pow.apply(2.0, 10.0), 1024.0);
        assert_eq!(BinOp::Gt.apply(2.0, 1.0), 1.0);
        assert_eq!(BinOp::Gt.apply(1.0, 2.0), 0.0);
        assert_eq!(BinOp::And.apply(1.0, 0.0), 0.0);
        assert_eq!(BinOp::Or.apply(1.0, 0.0), 1.0);
        assert_eq!(BinOp::Min.apply(1.0, -2.0), -2.0);
    }

    #[test]
    fn agg_fold() {
        let xs = [3.0, -1.0, 7.0];
        for (op, want) in [(AggOp::Sum, 9.0), (AggOp::Min, -1.0), (AggOp::Max, 7.0)] {
            let got = xs.iter().fold(op.init(), |a, &x| op.fold(a, x));
            assert_eq!(got, want, "{op:?}");
        }
    }

    #[test]
    fn children_enumeration() {
        let n = Node::IfElse {
            cond: NodeId(1),
            yes: NodeId(2),
            no: NodeId(3),
        };
        assert_eq!(n.children(), vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert!(Node::Scalar(1.0).is_leaf());
        assert!(!n.is_leaf());
    }

    #[test]
    fn keys_distinguish_nodes() {
        let a = Node::Scalar(1.0);
        let b = Node::Scalar(-1.0);
        let c = Node::Scalar(1.0);
        assert_ne!(a.key(), b.key());
        assert_eq!(a.key(), c.key());
        // NaN keys are stable (same bit pattern).
        assert_eq!(Node::Scalar(f64::NAN).key(), Node::Scalar(f64::NAN).key());
        // Different node kinds with the same payload differ.
        assert_ne!(
            Node::Map {
                op: UnOp::Neg,
                input: NodeId(0)
            }
            .key(),
            Node::Transpose { input: NodeId(0) }.key()
        );
    }

    #[test]
    fn sql_snippets() {
        assert_eq!(UnOp::Sqrt.sql("V"), "SQRT(V)");
        assert_eq!(BinOp::Add.sql("a", "b"), "(a+b)");
        assert!(BinOp::Gt.sql("a", "b").contains("CASE WHEN a>b"));
    }
}
