//! The four evaluation strategies of the paper's experiments (§4.2), as
//! interchangeable engines over one runtime.
//!
//! | Engine      | Evaluation                | Intermediates            | Named objects        |
//! |-------------|---------------------------|--------------------------|----------------------|
//! | `PlainR`    | eager, per operation      | full vectors on a paging heap | refcounted heap objects |
//! | `Strawman`  | eager, per operation      | `(I,V)` tables on disk   | tables kept alive    |
//! | `MatNamed`  | deferred within statement | pipelined (never stored) | materialized to disk |
//! | `Riot`      | fully deferred            | pipelined                | views (just names)   |
//!
//! The same program runs unmodified under each engine — the paper's
//! transparency claim — and every engine reports I/O through the same
//! counters, which is what the Figure 1 harness tabulates.

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use riot_array::{DenseMatrix, DenseVector, MatrixLayout, StorageCtx, TileOrder, VectorWriter};
use riot_sparse::SparseMatrix;
use riot_storage::{DiskModel, IoSnapshot, ObjectKind, PoolStats, ReplacerKind};
use riot_trace::{EventKind, Metrics, SpanToken};
use riot_vm::{PagedHeap, VmConfig, VmId};

use crate::exec::pipeline::{
    drain_agg, drain_partitioned, drain_to_vec, fold_partitioned, governed, materialize, ConstScan,
    CycleScan, GatherPipe, IfElsePipe, LiteralScan, MapPipe, Pipe, Probe, RangeScan, VecScan,
    ZipPipe,
};
use crate::exec::{factor, matmul, sparse as spkernel, ExecError, ExecResult, MatMulKernel};
use crate::expr::{AggOp, BinOp, ExprError, Node, NodeId, SourceRef, UnOp};
use crate::graph::ExprGraph;
use crate::opt::{optimize, OptConfig, RewriteStats};
use crate::shape::Shape;

/// Which of the paper's four strategies an engine implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Eager evaluation on a demand-paged heap: the thrashing baseline.
    PlainR,
    /// Every operation reads and writes relational-style `(I,V)` tables.
    Strawman,
    /// Deferred views, but every named object is materialized.
    MatNamed,
    /// Full RIOT: deferred across statements, optimized, pipelined.
    Riot,
}

impl EngineKind {
    /// All four engines, in the paper's presentation order.
    pub fn all() -> [EngineKind; 4] {
        [
            EngineKind::PlainR,
            EngineKind::Strawman,
            EngineKind::MatNamed,
            EngineKind::Riot,
        ]
    }

    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::PlainR => "Plain R",
            EngineKind::Strawman => "RIOT-DB/Strawman",
            EngineKind::MatNamed => "RIOT-DB/MatNamed",
            EngineKind::Riot => "RIOT-DB",
        }
    }
}

/// Engine construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Which strategy to run.
    pub kind: EngineKind,
    /// Block (and VM page) size in bytes.
    pub block_size: usize,
    /// Memory cap in blocks — the paper's `shmat` lockdown.
    pub mem_blocks: usize,
    /// Pipeline chunk size in elements.
    pub chunk_elems: usize,
    /// Buffer-pool replacement policy.
    pub replacer: ReplacerKind,
    /// Optimizer switches (only the `Riot` engine optimizes).
    pub opt: OptConfig,
    /// Kernel for deferred matrix multiplication.
    pub matmul_kernel: MatMulKernel,
    /// Worker threads for the elementwise pipeline, the parallel
    /// aggregation drain, and the sparse kernel family at forcing points.
    /// `1` (the default) runs the classic sequential executor, whose I/O
    /// order the cost-model validation pins down bit-for-bit; higher
    /// values fan work out on scoped worker pools with bit-identical
    /// results (and, in the in-memory regime, identical counted I/O).
    pub threads: usize,
    /// Background prefetch workers for the buffer pool
    /// ([`riot_storage::PoolConfig::prefetch_depth`]). `0` (the default)
    /// keeps the demand-paged I/O order bit-for-bit; positive values let
    /// the kernels' declared access patterns overlap device loads with
    /// compute — changing when reads happen, never how many.
    pub prefetch_depth: usize,
    /// RNG seed for `sample()`.
    pub seed: u64,
}

impl EngineConfig {
    /// Sensible defaults for `kind`: 8 KiB blocks, a 4 MiB memory cap,
    /// LRU replacement, all optimizations on, square-tiled matmul.
    pub fn new(kind: EngineKind) -> Self {
        EngineConfig {
            kind,
            block_size: 8192,
            mem_blocks: 512,
            chunk_elems: 1024,
            replacer: ReplacerKind::Lru,
            opt: OptConfig::default(),
            matmul_kernel: MatMulKernel::SquareTiled,
            threads: 1,
            prefetch_depth: 0,
            seed: R_SEED,
        }
    }
}

const R_SEED: u64 = 20090104; // CIDR 2009, January 4.

/// Internal representation of a vector value under some engine.
#[derive(Clone)]
pub(crate) enum VecRepr {
    /// Deferred engines: a DAG node.
    Node(NodeId),
    /// Plain R: a paging-heap object (refcount managed by the runtime).
    Vm(VmId),
    /// Strawman: a stored `(I,V)` table, freed when the last handle drops.
    Table(Rc<StrawTable>),
}

/// Internal representation of a matrix value.
#[derive(Clone)]
pub(crate) enum MatRepr {
    /// Deferred engines: a DAG node.
    Node(NodeId),
    /// Plain R: row-major data on the paging heap.
    Vm {
        /// Heap object.
        id: VmId,
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
    },
    /// Strawman: a stored matrix.
    Stored(Rc<StrawMat>),
}

/// A fully materialized matrix in either physical representation. The
/// executor's matrix forcing returns this so sparse results can stay
/// sparse through a chain of multiplications.
#[derive(Clone)]
pub(crate) enum MatValue {
    /// Dense, tiled storage.
    Dense(DenseMatrix),
    /// Block-compressed sparse storage.
    Sparse(SparseMatrix),
}

/// RAII wrapper freeing a strawman table when the last reference dies —
/// the dependency-tracking hook of §4.1 ("to be able to safely drop
/// views, RIOT-DB must track such dependencies").
pub(crate) struct StrawTable {
    /// Anonymous intermediates are owned (freed on drop); named objects
    /// bound through the corpus harness or reopened from a durable catalog
    /// are borrowed — dropping the handle must not delete durable state.
    pub(crate) owned: bool,
    pub(crate) vec: DenseVector,
}

impl Drop for StrawTable {
    fn drop(&mut self) {
        // Freeing is best-effort: a failure here only leaks simulated disk.
        if self.owned {
            let _ = self.vec.clone().free();
        }
    }
}

/// RAII wrapper for strawman matrices.
pub(crate) struct StrawMat {
    /// See [`StrawTable::owned`].
    pub(crate) owned: bool,
    pub(crate) mat: DenseMatrix,
}

impl Drop for StrawMat {
    fn drop(&mut self) {
        if self.owned {
            let _ = self.mat.clone().free();
        }
    }
}

/// Baselines captured at span open so `span_end` can attribute counter
/// deltas to the span (see [`Runtime::span_begin`]).
struct SpanGuard {
    token: SpanToken,
    io: IoSnapshot,
    ops: u64,
    pool: PoolStats,
}

/// The engine runtime: storage, paging heap, expression graph, caches, and
/// counters. [`crate::session::Session`] wraps this in `Rc<RefCell<..>>`
/// and layers the R-like handle API on top.
pub struct Runtime {
    pub(crate) cfg: EngineConfig,
    pub(crate) graph: ExprGraph,
    pub(crate) ctx: Arc<StorageCtx>,
    pub(crate) heap: PagedHeap,
    pub(crate) vec_sources: HashMap<u32, DenseVector>,
    pub(crate) mat_sources: HashMap<u32, DenseMatrix>,
    pub(crate) sparse_sources: HashMap<u32, SparseMatrix>,
    next_source: u32,
    /// Materialized vector results, keyed by DAG node (MatNamed's named
    /// objects; Riot's spills and shared-subexpression caches).
    pub(crate) materialized: HashMap<NodeId, DenseVector>,
    pub(crate) mat_materialized: HashMap<NodeId, DenseMatrix>,
    pub(crate) sparse_materialized: HashMap<NodeId, SparseMatrix>,
    pub(crate) cpu_ops: Arc<AtomicU64>,
    pub(crate) last_opt_stats: RewriteStats,
    rng: StdRng,
}

impl Runtime {
    /// Build a runtime for `cfg`.
    pub fn new(cfg: EngineConfig) -> Self {
        let ctx = StorageCtx::new_mem_opts(
            cfg.block_size,
            riot_storage::PoolConfig {
                frames: cfg.mem_blocks,
                replacer: cfg.replacer,
                prefetch_depth: cfg.prefetch_depth,
                ..riot_storage::PoolConfig::default()
            },
            1,
        );
        Self::with_ctx(cfg, ctx)
    }

    /// Build a runtime over an existing storage context — the reopen path:
    /// a durable catalog created in one session can be [`StorageCtx::open`]ed
    /// and driven by a fresh runtime, with named objects picked back up via
    /// `Runtime::open_vector`/`Runtime::open_matrix`. The context's block
    /// size must match `cfg.block_size` (object extents are block-addressed).
    pub fn with_ctx(cfg: EngineConfig, ctx: Arc<StorageCtx>) -> Self {
        let heap = PagedHeap::new(VmConfig {
            page_elems: cfg.block_size / 8,
            frames: cfg.mem_blocks,
        });
        // `RIOT_TRACE=1` turns on event collection for the whole runtime
        // (the CI trace leg runs the entire suite this way, proving the
        // enabled path never perturbs counted I/O or results).
        if std::env::var_os("RIOT_TRACE").is_some_and(|v| v != "0" && !v.is_empty()) {
            ctx.tracer().enable();
        }
        // `RIOT_GOVERN=1` engages the governor with empty limits — full
        // checkpoint accounting, nothing to trip — for the whole runtime
        // (the CI governance leg runs the entire suite this way, proving
        // the engaged path never perturbs counted I/O or results).
        if std::env::var_os("RIOT_GOVERN").is_some_and(|v| v != "0" && !v.is_empty()) {
            ctx.governor().engage(riot_storage::ResourceLimits::none());
        }
        Runtime {
            cfg,
            graph: ExprGraph::new(),
            ctx,
            heap,
            vec_sources: HashMap::new(),
            mat_sources: HashMap::new(),
            sparse_sources: HashMap::new(),
            next_source: 0,
            materialized: HashMap::new(),
            mat_materialized: HashMap::new(),
            sparse_materialized: HashMap::new(),
            cpu_ops: Arc::new(AtomicU64::new(0)),
            last_opt_stats: RewriteStats::default(),
            rng: StdRng::seed_from_u64(cfg.seed),
        }
    }

    fn fresh_source(&mut self) -> SourceRef {
        let r = SourceRef(self.next_source);
        self.next_source += 1;
        r
    }

    /// Flush dirty pages and empty the buffer-pool cache, so the next
    /// phase is measured cold — the harness calls this between loading and
    /// querying, like the paper's separate measurement runs. (The Plain R
    /// heap has no disk backing to flush to; its pages *are* the state.)
    pub fn drop_caches(&self) -> ExecResult<()> {
        self.ctx.clear_cache()?;
        Ok(())
    }

    /// Combined I/O across the buffer pool and the paging heap.
    pub fn io_snapshot(&self) -> IoSnapshot {
        let pool = self.ctx.io_snapshot();
        let vm = self.heap.io_stats().snapshot();
        IoSnapshot {
            reads: pool.reads + vm.reads,
            writes: pool.writes + vm.writes,
            seq_reads: pool.seq_reads + vm.seq_reads,
            seq_writes: pool.seq_writes + vm.seq_writes,
            bytes_read: pool.bytes_read + vm.bytes_read,
            bytes_written: pool.bytes_written + vm.bytes_written,
            syncs: pool.syncs + vm.syncs,
        }
    }

    /// Scalar operations performed so far.
    pub fn cpu_ops(&self) -> u64 {
        self.cpu_ops.load(Ordering::Relaxed)
    }

    /// Modeled execution time per Figure 1(b)'s I/O-dominated accounting.
    pub fn modeled_seconds(&self, model: &DiskModel) -> f64 {
        model.modeled_seconds(&self.io_snapshot(), self.cpu_ops())
    }

    fn count_ops(&self, n: usize) {
        self.cpu_ops.fetch_add(n as u64, Ordering::Relaxed);
    }

    // ================= tracing =================

    /// The runtime's tracer (shared with the buffer pool; disabled by
    /// default — one relaxed atomic load per call site when off).
    pub fn tracer(&self) -> &Arc<riot_trace::Tracer> {
        self.ctx.tracer()
    }

    /// Buffer-pool cache-effectiveness counters (hits, misses, evictions,
    /// prefetch traffic) for the session's pool.
    pub fn pool_stats(&self) -> PoolStats {
        self.ctx.pool().pool_stats()
    }

    /// One-call folded storage counters: counted I/O plus pool counters
    /// (retry/corruption counters fold in at the layer that stacked those
    /// wrappers; the default in-memory device has none).
    pub fn storage_report(&self) -> riot_storage::StorageReport {
        self.ctx.storage_report()
    }

    /// EXPLAIN for a deferred node: under Riot the optimizer runs first —
    /// exactly what the forcing point would execute — then the chosen
    /// logical plan renders as a text tree.
    pub fn explain(&mut self, id: NodeId) -> String {
        let mut root = id;
        if self.cfg.kind == EngineKind::Riot {
            let cfg = self.cfg.opt;
            let (r, stats) = optimize(&mut self.graph, root, &cfg);
            self.last_opt_stats = stats;
            root = r;
        }
        crate::profile::render_plan(&self.graph, root)
    }

    /// Run `f` as one governed query. With the governor disengaged (or
    /// when already inside a governed bracket — forcing points nest) this
    /// is a direct call. Engaged, it opens the governor's budget bracket,
    /// snapshots the set of live catalog objects, and — if `f` unwinds
    /// with a governance abort (cancel, budget, pin timeout) — releases
    /// everything the query allocated: queued prefetch windows are
    /// dropped, cache entries backed by query-created objects are purged,
    /// and the objects themselves are freed, restoring the catalog to its
    /// pre-query state (the *leak-free abort* pinned invariant).
    pub(crate) fn governed<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> ExecResult<T>,
    ) -> ExecResult<T> {
        let outer = {
            let gov = self.ctx.governor();
            gov.engaged() && !gov.in_query()
        };
        if !outer {
            return f(self);
        }
        let baseline = self.ctx.live_object_ids();
        self.ctx.governor().begin();
        let result = f(self);
        self.ctx.governor().end();
        if let Err(e) = &result {
            if e.is_governance_abort() {
                self.abort_cleanup(&baseline);
            }
        }
        result
    }

    /// Release everything a governance-aborted query allocated (see
    /// [`Runtime::governed`]). `baseline` is the set of live catalog
    /// objects at query start; anything newer is the aborted query's.
    fn abort_cleanup(&mut self, baseline: &[riot_storage::ObjectId]) {
        // Stop queued prefetch windows first: nothing new should load on
        // behalf of a dead query.
        self.ctx.pool().discard_prefetch_queue();
        let base: std::collections::HashSet<riot_storage::ObjectId> =
            baseline.iter().copied().collect();
        // Purge cache entries whose backing object the aborted query
        // created, so no handle survives to a freed object. Entries over
        // pre-query objects (earlier statements' results) stay valid.
        self.materialized.retain(|_, v| base.contains(&v.object()));
        self.mat_materialized
            .retain(|_, m| base.contains(&m.object()));
        self.sparse_materialized
            .retain(|_, s| base.contains(&s.object()));
        // Free the objects themselves: half-built outputs and spills
        // whose handles were consumed by the unwinding error path.
        for id in self.ctx.live_object_ids() {
            if !base.contains(&id) {
                let _ = self.ctx.drop_object(id);
            }
        }
    }

    /// The runtime's storage context (pool, catalog, and governor).
    pub fn storage_ctx(&self) -> Arc<StorageCtx> {
        Arc::clone(&self.ctx)
    }

    /// Open a measured span: records the span start plus counter
    /// baselines, so [`Runtime::span_end`] can attribute the deltas.
    /// Inert (no snapshots taken) while tracing is disabled.
    fn span_begin(&self, name: &'static str) -> SpanGuard {
        let token = self.ctx.tracer().begin_span(name);
        if !token.is_active() {
            return SpanGuard {
                token,
                io: IoSnapshot::default(),
                ops: 0,
                pool: PoolStats::default(),
            };
        }
        SpanGuard {
            token,
            io: self.io_snapshot(),
            ops: self.cpu_ops(),
            pool: self.ctx.pool().pool_stats(),
        }
    }

    /// Close a measured span with the counter deltas since its open.
    fn span_end(&self, guard: SpanGuard, detail: String) {
        if !guard.token.is_active() {
            return;
        }
        let io = self.io_snapshot() - guard.io;
        let pool = self.ctx.pool().pool_stats().delta(&guard.pool);
        let metrics = Metrics {
            reads: io.reads,
            writes: io.writes,
            seq_reads: io.seq_reads,
            seq_writes: io.seq_writes,
            bytes_read: io.bytes_read,
            bytes_written: io.bytes_written,
            flops: self.cpu_ops() - guard.ops,
            threads: self.cfg.threads.max(1) as u64,
            pool_hits: pool.hits,
            pool_misses: pool.misses,
        };
        self.ctx.tracer().end_span(guard.token, detail, metrics);
    }

    /// Span detail: the node's rendered expression, truncated. Empty
    /// (allocation-free) while tracing is disabled.
    fn detail_of(&self, id: NodeId) -> String {
        if !self.ctx.tracer().is_enabled() {
            return String::new();
        }
        let mut s = self.graph.render(id);
        if s.len() > 120 {
            s.truncate(117);
            s.push_str("...");
        }
        s
    }

    /// Emit the optimizer's decisions for the forcing point that just
    /// optimized `root`: the chosen plan (rendered) and one event per
    /// rewrite rule that fired.
    fn record_opt_events(&self, root: NodeId) {
        let tracer = self.ctx.tracer();
        if !tracer.is_enabled() {
            return;
        }
        tracer.record(EventKind::Plan {
            detail: self.detail_of(root).into_boxed_str(),
        });
        let s = &self.last_opt_stats;
        for (rule, count) in [
            ("mask_to_ifelse", s.mask_to_ifelse),
            ("gathers_pushed", s.gathers_pushed),
            ("folds", s.folds),
            ("chains_reordered", s.chains_reordered),
            ("sparse_kernels", s.sparse_kernels),
            ("sparse_densified", s.sparse_densified),
            ("sparse_transposes", s.sparse_transposes),
            ("transpose_densified", s.transpose_densified),
            ("normal_eq_solves", s.normal_eq_solves),
        ] {
            if count > 0 {
                tracer.record(EventKind::Rewrite { rule, count });
            }
        }
    }

    fn chunk(&self) -> usize {
        self.cfg.chunk_elems
    }

    fn mem_elems(&self) -> usize {
        self.cfg.mem_blocks * (self.cfg.block_size / 8)
    }

    // ================= loading =================

    /// Load a vector produced by `f(i)` for `i in 0..len`. A `name`
    /// registers the stored object in the catalog so a later session can
    /// reopen it ([`Runtime::open_vector`]); Plain R has no catalog-backed
    /// storage, so the name is ignored there.
    pub(crate) fn load_vector(
        &mut self,
        len: usize,
        name: Option<&str>,
        mut f: impl FnMut(usize) -> f64,
    ) -> ExecResult<VecRepr> {
        match self.cfg.kind {
            EngineKind::PlainR => {
                let id = self.heap.alloc(len);
                let chunk = self.chunk();
                let mut buf = Vec::with_capacity(chunk);
                let mut at = 0;
                while at < len {
                    buf.clear();
                    let take = chunk.min(len - at);
                    for i in 0..take {
                        buf.push(f(at + i));
                    }
                    self.heap.write_chunk(id, at, &buf);
                    at += take;
                }
                Ok(VecRepr::Vm(id))
            }
            EngineKind::Strawman => {
                let vec = DenseVector::create_wide(&self.ctx, len, name)?;
                let chunk = self.chunk();
                let mut buf = Vec::with_capacity(chunk);
                let mut at = 0;
                while at < len {
                    buf.clear();
                    let take = chunk.min(len - at);
                    for i in 0..take {
                        buf.push(f(at + i));
                    }
                    vec.write_range(at, &buf)?;
                    at += take;
                }
                vec.flush()?;
                // Named tables are durable catalog residents the session
                // merely references; anonymous intermediates are owned.
                let owned = name.is_none();
                Ok(VecRepr::Table(Rc::new(StrawTable { owned, vec })))
            }
            EngineKind::MatNamed | EngineKind::Riot => {
                let src = self.fresh_source();
                let mut writer = VectorWriter::new(&self.ctx, len, name)?;
                let chunk = self.chunk();
                let mut buf = Vec::with_capacity(chunk);
                let mut at = 0;
                while at < len {
                    buf.clear();
                    let take = chunk.min(len - at);
                    for i in 0..take {
                        buf.push(f(at + i));
                    }
                    writer.push_chunk(&buf)?;
                    at += take;
                }
                self.vec_sources.insert(src.0, writer.finish()?);
                let node = self.graph.vec_source(src, len);
                Ok(VecRepr::Node(node))
            }
        }
    }

    /// Load a matrix produced by `f(row, col)`. A `name` registers the
    /// stored object for reopening; Plain R ignores it (paging heap only).
    pub(crate) fn load_matrix(
        &mut self,
        rows: usize,
        cols: usize,
        layout: MatrixLayout,
        name: Option<&str>,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> ExecResult<MatRepr> {
        match self.cfg.kind {
            EngineKind::PlainR => {
                let id = self.heap.alloc(rows * cols);
                let chunk = self.chunk();
                let mut buf = Vec::with_capacity(chunk);
                let mut at = 0;
                while at < rows * cols {
                    buf.clear();
                    let take = chunk.min(rows * cols - at);
                    for i in 0..take {
                        let idx = at + i;
                        buf.push(f(idx / cols, idx % cols));
                    }
                    self.heap.write_chunk(id, at, &buf);
                    at += take;
                }
                Ok(MatRepr::Vm { id, rows, cols })
            }
            EngineKind::Strawman => {
                let mat = DenseMatrix::from_fn(
                    &self.ctx,
                    rows,
                    cols,
                    MatrixLayout::ColMajor,
                    TileOrder::ColMajor,
                    name,
                    f,
                )?;
                let owned = name.is_none();
                Ok(MatRepr::Stored(Rc::new(StrawMat { owned, mat })))
            }
            EngineKind::MatNamed | EngineKind::Riot => {
                let src = self.fresh_source();
                let order = match layout {
                    MatrixLayout::RowMajor => TileOrder::RowMajor,
                    MatrixLayout::ColMajor => TileOrder::ColMajor,
                    MatrixLayout::Square => TileOrder::RowMajor,
                };
                let mat = DenseMatrix::from_fn(&self.ctx, rows, cols, layout, order, name, f)?;
                self.mat_sources.insert(src.0, mat);
                let node = self.graph.mat_source(src, rows, cols);
                Ok(MatRepr::Node(node))
            }
        }
    }

    /// Load a sparse matrix from COO triplets `(row, col, value)`
    /// (0-based; duplicates sum, zeros drop).
    ///
    /// Deferred engines store the block-compressed format and record the
    /// nnz statistic in the source node for the optimizer's density
    /// estimate. The eager engines have no sparse backend — exactly like
    /// base R, where sparsity is a library concept — so they densify at
    /// load and the same program still runs.
    pub(crate) fn load_sparse(
        &mut self,
        rows: usize,
        cols: usize,
        name: Option<&str>,
        triplets: &[(usize, usize, f64)],
    ) -> ExecResult<MatRepr> {
        match self.cfg.kind {
            EngineKind::PlainR => {
                let id = self.heap.alloc(rows * cols);
                let chunk = self.chunk();
                let zeros = vec![0.0; chunk];
                let mut at = 0;
                while at < rows * cols {
                    let take = chunk.min(rows * cols - at);
                    self.heap.write_chunk(id, at, &zeros[..take]);
                    at += take;
                }
                for &(r, c, v) in triplets {
                    let idx = r * cols + c;
                    let cur = self.heap.get(id, idx);
                    self.heap.set(id, idx, cur + v);
                }
                Ok(MatRepr::Vm { id, rows, cols })
            }
            EngineKind::Strawman => {
                let mut cells: HashMap<(usize, usize), f64> = HashMap::new();
                for &(r, c, v) in triplets {
                    *cells.entry((r, c)).or_insert(0.0) += v;
                }
                let mat = DenseMatrix::from_fn(
                    &self.ctx,
                    rows,
                    cols,
                    MatrixLayout::ColMajor,
                    TileOrder::ColMajor,
                    name,
                    |i, j| cells.get(&(i, j)).copied().unwrap_or(0.0),
                )?;
                let owned = name.is_none();
                Ok(MatRepr::Stored(Rc::new(StrawMat { owned, mat })))
            }
            EngineKind::MatNamed | EngineKind::Riot => {
                let src = self.fresh_source();
                let sp = SparseMatrix::from_triplets(
                    &self.ctx,
                    rows,
                    cols,
                    MatrixLayout::Square,
                    triplets,
                    name,
                )?;
                let nnz = sp.nnz();
                self.sparse_sources.insert(src.0, sp);
                Ok(MatRepr::Node(
                    self.graph.sp_mat_source(src, rows, cols, nnz),
                ))
            }
        }
    }

    /// Reopen a named stored vector (written by a `load_vector` with a
    /// name, possibly in a previous session over the same durable
    /// storage). Plain R copies it onto the paging heap — eager semantics,
    /// same as loading fresh; Strawman wraps a borrowed (non-owning)
    /// table; the deferred engines register a source node.
    pub(crate) fn open_vector(&mut self, name: &str) -> ExecResult<VecRepr> {
        let vec = DenseVector::open(&self.ctx, name)?;
        match self.cfg.kind {
            EngineKind::PlainR => {
                let len = vec.len();
                let id = self.heap.alloc(len);
                let chunk = self.chunk();
                let mut buf = vec![0.0; chunk];
                let mut at = 0;
                while at < len {
                    let take = chunk.min(len - at);
                    vec.read_range(at, &mut buf[..take])?;
                    self.heap.write_chunk(id, at, &buf[..take]);
                    at += take;
                }
                Ok(VecRepr::Vm(id))
            }
            EngineKind::Strawman => Ok(VecRepr::Table(Rc::new(StrawTable { owned: false, vec }))),
            EngineKind::MatNamed | EngineKind::Riot => {
                let src = self.fresh_source();
                let len = vec.len();
                self.vec_sources.insert(src.0, vec);
                Ok(VecRepr::Node(self.graph.vec_source(src, len)))
            }
        }
    }

    /// Reopen a named stored matrix, dense or sparse (the catalog header's
    /// object kind disambiguates). Eager engines densify sparse objects on
    /// the way in, mirroring `load_sparse`.
    pub(crate) fn open_matrix(&mut self, name: &str) -> ExecResult<MatRepr> {
        let is_sparse = self
            .ctx
            .find_object(name)
            .and_then(|id| self.ctx.object_header(id).ok().flatten())
            .is_some_and(|h| h.kind == ObjectKind::SparseMatrix);
        if is_sparse {
            let sp = SparseMatrix::open(&self.ctx, name)?;
            let (rows, cols) = sp.shape();
            match self.cfg.kind {
                EngineKind::PlainR => {
                    let data = sp.to_rows()?;
                    let id = self.heap.alloc(rows * cols);
                    let chunk = self.chunk();
                    let mut at = 0;
                    while at < rows * cols {
                        let take = chunk.min(rows * cols - at);
                        self.heap.write_chunk(id, at, &data[at..at + take]);
                        at += take;
                    }
                    Ok(MatRepr::Vm { id, rows, cols })
                }
                EngineKind::Strawman => {
                    let dense = sp.to_dense(TileOrder::ColMajor, None)?;
                    Ok(MatRepr::Stored(Rc::new(StrawMat {
                        owned: true,
                        mat: dense,
                    })))
                }
                EngineKind::MatNamed | EngineKind::Riot => {
                    let src = self.fresh_source();
                    let nnz = sp.nnz();
                    self.sparse_sources.insert(src.0, sp);
                    Ok(MatRepr::Node(
                        self.graph.sp_mat_source(src, rows, cols, nnz),
                    ))
                }
            }
        } else {
            let mat = DenseMatrix::open(&self.ctx, name)?;
            let (rows, cols) = mat.shape();
            match self.cfg.kind {
                EngineKind::PlainR => {
                    let data = mat.to_rows()?;
                    let id = self.heap.alloc(rows * cols);
                    let chunk = self.chunk();
                    let mut at = 0;
                    while at < rows * cols {
                        let take = chunk.min(rows * cols - at);
                        self.heap.write_chunk(id, at, &data[at..at + take]);
                        at += take;
                    }
                    Ok(MatRepr::Vm { id, rows, cols })
                }
                EngineKind::Strawman => {
                    Ok(MatRepr::Stored(Rc::new(StrawMat { owned: false, mat })))
                }
                EngineKind::MatNamed | EngineKind::Riot => {
                    let src = self.fresh_source();
                    self.mat_sources.insert(src.0, mat);
                    Ok(MatRepr::Node(self.graph.mat_source(src, rows, cols)))
                }
            }
        }
    }

    // ================= vector operations =================

    /// Length of a vector value.
    pub(crate) fn vec_len(&self, v: &VecRepr) -> usize {
        match v {
            VecRepr::Node(id) => self.graph.shape(*id).len(),
            VecRepr::Vm(id) => self.heap.len(*id),
            VecRepr::Table(t) => t.vec.len(),
        }
    }

    /// Elementwise binary op between two vector values (R recycling).
    pub(crate) fn binop(&mut self, op: BinOp, lhs: &VecRepr, rhs: &VecRepr) -> ExecResult<VecRepr> {
        self.governed(|rt| rt.binop_ungoverned(op, lhs, rhs))
    }

    fn binop_ungoverned(&mut self, op: BinOp, lhs: &VecRepr, rhs: &VecRepr) -> ExecResult<VecRepr> {
        match self.cfg.kind {
            EngineKind::MatNamed | EngineKind::Riot => {
                let (VecRepr::Node(l), VecRepr::Node(r)) = (lhs, rhs) else {
                    unreachable!("deferred engines hold nodes");
                };
                Ok(VecRepr::Node(self.graph.zip(op, *l, *r)?))
            }
            EngineKind::PlainR => self.plainr_binop(op, lhs, rhs),
            EngineKind::Strawman => self.strawman_binop(op, lhs, rhs),
        }
    }

    /// Elementwise binary op against a scalar.
    pub(crate) fn binop_scalar(
        &mut self,
        op: BinOp,
        lhs: &VecRepr,
        scalar: f64,
        scalar_on_left: bool,
    ) -> ExecResult<VecRepr> {
        self.governed(|rt| rt.binop_scalar_ungoverned(op, lhs, scalar, scalar_on_left))
    }

    fn binop_scalar_ungoverned(
        &mut self,
        op: BinOp,
        lhs: &VecRepr,
        scalar: f64,
        scalar_on_left: bool,
    ) -> ExecResult<VecRepr> {
        match self.cfg.kind {
            EngineKind::MatNamed | EngineKind::Riot => {
                let VecRepr::Node(l) = lhs else {
                    unreachable!()
                };
                let s = self.graph.scalar(scalar);
                let node = if scalar_on_left {
                    self.graph.zip(op, s, *l)?
                } else {
                    self.graph.zip(op, *l, s)?
                };
                Ok(VecRepr::Node(node))
            }
            EngineKind::PlainR => {
                let scalar_repr = self.scalar_vec(scalar);
                let out = if scalar_on_left {
                    self.plainr_binop(op, &scalar_repr, lhs)
                } else {
                    self.plainr_binop(op, lhs, &scalar_repr)
                };
                self.release(&scalar_repr);
                out
            }
            EngineKind::Strawman => {
                let scalar_repr = self.scalar_vec(scalar);
                if scalar_on_left {
                    self.strawman_binop(op, &scalar_repr, lhs)
                } else {
                    self.strawman_binop(op, lhs, &scalar_repr)
                }
            }
        }
    }

    /// A length-1 vector holding `scalar` (eager engines' broadcast aid).
    fn scalar_vec(&mut self, scalar: f64) -> VecRepr {
        match self.cfg.kind {
            EngineKind::PlainR => {
                let id = self.heap.alloc(1);
                self.heap.write_chunk(id, 0, &[scalar]);
                VecRepr::Vm(id)
            }
            EngineKind::Strawman => {
                let vec =
                    DenseVector::create_wide(&self.ctx, 1, None).expect("scalar table allocation");
                vec.write_range(0, &[scalar]).expect("scalar table write");
                VecRepr::Table(Rc::new(StrawTable { owned: true, vec }))
            }
            _ => unreachable!("deferred engines use Scalar nodes"),
        }
    }

    /// Elementwise unary map.
    pub(crate) fn unop(&mut self, op: UnOp, input: &VecRepr) -> ExecResult<VecRepr> {
        self.governed(|rt| rt.unop_ungoverned(op, input))
    }

    fn unop_ungoverned(&mut self, op: UnOp, input: &VecRepr) -> ExecResult<VecRepr> {
        match self.cfg.kind {
            EngineKind::MatNamed | EngineKind::Riot => {
                let VecRepr::Node(i) = input else {
                    unreachable!()
                };
                Ok(VecRepr::Node(self.graph.map(op, *i)))
            }
            EngineKind::PlainR => {
                let n = self.vec_len(input);
                let VecRepr::Vm(src) = input else {
                    unreachable!()
                };
                let src = *src;
                let dst = self.heap.alloc(n);
                let chunk = self.chunk();
                let mut buf = vec![0.0; chunk];
                let mut at = 0;
                while at < n {
                    self.ctx.governor().checkpoint("plainr.unop.chunk")?;
                    let take = chunk.min(n - at);
                    self.ctx.governor().add_flops(take as u64);
                    self.heap.read_chunk(src, at, &mut buf[..take]);
                    for v in &mut buf[..take] {
                        *v = op.apply(*v);
                    }
                    self.heap.write_chunk(dst, at, &buf[..take]);
                    at += take;
                }
                self.count_ops(n);
                Ok(VecRepr::Vm(dst))
            }
            EngineKind::Strawman => {
                let n = self.vec_len(input);
                let VecRepr::Table(t) = input else {
                    unreachable!()
                };
                let out = DenseVector::create_wide(&self.ctx, n, None)?;
                let chunk = self.chunk();
                let mut buf = vec![0.0; chunk];
                let mut at = 0;
                while at < n {
                    self.ctx.governor().checkpoint("strawman.unop.chunk")?;
                    let take = chunk.min(n - at);
                    self.ctx.governor().add_flops(take as u64);
                    t.vec.read_range(at, &mut buf[..take])?;
                    for v in &mut buf[..take] {
                        *v = op.apply(*v);
                    }
                    out.write_range(at, &buf[..take])?;
                    at += take;
                }
                out.flush()?;
                self.count_ops(n);
                Ok(VecRepr::Table(Rc::new(StrawTable {
                    owned: true,
                    vec: out,
                })))
            }
        }
    }

    fn plainr_binop(&mut self, op: BinOp, lhs: &VecRepr, rhs: &VecRepr) -> ExecResult<VecRepr> {
        let (VecRepr::Vm(l), VecRepr::Vm(r)) = (lhs, rhs) else {
            unreachable!()
        };
        let (l, r) = (*l, *r);
        let (ll, rl) = (self.heap.len(l), self.heap.len(r));
        let n = ll.max(rl);
        let dst = self.heap.alloc(n);
        let chunk = self.chunk();
        let mut lb = vec![0.0; chunk];
        let mut rb = vec![0.0; chunk];
        let mut ob = vec![0.0; chunk];
        let mut at = 0;
        while at < n {
            self.ctx.governor().checkpoint("plainr.binop.chunk")?;
            let take = chunk.min(n - at);
            self.ctx.governor().add_flops(take as u64);
            // Aligned fast path; recycled operands fall back to element
            // reads (R's recycling is rare for large operands).
            if ll == n {
                self.heap.read_chunk(l, at, &mut lb[..take]);
            } else {
                for i in 0..take {
                    lb[i] = self.heap.get(l, (at + i) % ll);
                }
            }
            if rl == n {
                self.heap.read_chunk(r, at, &mut rb[..take]);
            } else {
                for i in 0..take {
                    rb[i] = self.heap.get(r, (at + i) % rl);
                }
            }
            for i in 0..take {
                ob[i] = op.apply(lb[i], rb[i]);
            }
            self.heap.write_chunk(dst, at, &ob[..take]);
            at += take;
        }
        self.count_ops(n);
        Ok(VecRepr::Vm(dst))
    }

    fn strawman_binop(&mut self, op: BinOp, lhs: &VecRepr, rhs: &VecRepr) -> ExecResult<VecRepr> {
        let (VecRepr::Table(lt), VecRepr::Table(rt)) = (lhs, rhs) else {
            unreachable!()
        };
        let (ll, rl) = (lt.vec.len(), rt.vec.len());
        let n = ll.max(rl);
        let out = DenseVector::create_wide(&self.ctx, n, None)?;
        let chunk = self.chunk();
        let mut lb = vec![0.0; chunk];
        let mut rb = vec![0.0; chunk];
        let mut at = 0;
        while at < n {
            self.ctx.governor().checkpoint("strawman.binop.chunk")?;
            let take = chunk.min(n - at);
            self.ctx.governor().add_flops(take as u64);
            if ll == n {
                lt.vec.read_range(at, &mut lb[..take])?;
            } else {
                for i in 0..take {
                    lb[i] = lt.vec.get((at + i) % ll)?;
                }
            }
            if rl == n {
                rt.vec.read_range(at, &mut rb[..take])?;
            } else {
                for i in 0..take {
                    rb[i] = rt.vec.get((at + i) % rl)?;
                }
            }
            for i in 0..take {
                lb[i] = op.apply(lb[i], rb[i]);
            }
            out.write_range(at, &lb[..take])?;
            at += take;
        }
        out.flush()?;
        self.count_ops(n);
        Ok(VecRepr::Table(Rc::new(StrawTable {
            owned: true,
            vec: out,
        })))
    }

    /// Subscript read `data[index]`.
    pub(crate) fn gather(&mut self, data: &VecRepr, index: &VecRepr) -> ExecResult<VecRepr> {
        self.governed(|rt| rt.gather_ungoverned(data, index))
    }

    fn gather_ungoverned(&mut self, data: &VecRepr, index: &VecRepr) -> ExecResult<VecRepr> {
        match self.cfg.kind {
            EngineKind::MatNamed | EngineKind::Riot => {
                let (VecRepr::Node(d), VecRepr::Node(i)) = (data, index) else {
                    unreachable!()
                };
                Ok(VecRepr::Node(self.graph.gather(*d, *i)?))
            }
            EngineKind::PlainR => {
                let (VecRepr::Vm(d), VecRepr::Vm(i)) = (data, index) else {
                    unreachable!()
                };
                let (d, i) = (*d, *i);
                let (dn, k) = (self.heap.len(d), self.heap.len(i));
                let dst = self.heap.alloc(k);
                for t in 0..k {
                    let raw = self.heap.get(i, t) as i64;
                    if raw < 1 || raw as usize > dn {
                        return Err(ExecError::Expr(crate::expr::ExprError::IndexOutOfBounds {
                            index: raw,
                            len: dn,
                        }));
                    }
                    let v = self.heap.get(d, raw as usize - 1);
                    self.heap.set(dst, t, v);
                }
                self.count_ops(k);
                Ok(VecRepr::Vm(dst))
            }
            EngineKind::Strawman => {
                let (VecRepr::Table(dt), VecRepr::Table(it)) = (data, index) else {
                    unreachable!()
                };
                let (dn, k) = (dt.vec.len(), it.vec.len());
                let out = DenseVector::create_wide(&self.ctx, k, None)?;
                for t in 0..k {
                    let raw = it.vec.get(t)? as i64;
                    if raw < 1 || raw as usize > dn {
                        return Err(ExecError::Expr(crate::expr::ExprError::IndexOutOfBounds {
                            index: raw,
                            len: dn,
                        }));
                    }
                    out.set(t, dt.vec.get(raw as usize - 1)?)?;
                }
                self.count_ops(k);
                Ok(VecRepr::Table(Rc::new(StrawTable {
                    owned: true,
                    vec: out,
                })))
            }
        }
    }

    /// Masked functional update `data[mask] <- value`.
    pub(crate) fn mask_assign(
        &mut self,
        data: &VecRepr,
        mask: &VecRepr,
        value: &VecRepr,
    ) -> ExecResult<VecRepr> {
        self.governed(|rt| rt.mask_assign_ungoverned(data, mask, value))
    }

    fn mask_assign_ungoverned(
        &mut self,
        data: &VecRepr,
        mask: &VecRepr,
        value: &VecRepr,
    ) -> ExecResult<VecRepr> {
        match self.cfg.kind {
            EngineKind::MatNamed | EngineKind::Riot => {
                let (VecRepr::Node(d), VecRepr::Node(m), VecRepr::Node(v)) = (data, mask, value)
                else {
                    unreachable!()
                };
                Ok(VecRepr::Node(self.graph.mask_assign(*d, *m, *v)?))
            }
            _ => {
                // Eager: out[i] = mask[i] != 0 ? value.at(i) : data[i].
                let cond = mask.clone();
                let sel = self.ifelse_eager(&cond, value, data)?;
                Ok(sel)
            }
        }
    }

    /// Masked update against a scalar replacement value.
    pub(crate) fn mask_assign_scalar(
        &mut self,
        data: &VecRepr,
        mask: &VecRepr,
        value: f64,
    ) -> ExecResult<VecRepr> {
        self.governed(|rt| rt.mask_assign_scalar_ungoverned(data, mask, value))
    }

    fn mask_assign_scalar_ungoverned(
        &mut self,
        data: &VecRepr,
        mask: &VecRepr,
        value: f64,
    ) -> ExecResult<VecRepr> {
        match self.cfg.kind {
            EngineKind::MatNamed | EngineKind::Riot => {
                let (VecRepr::Node(d), VecRepr::Node(m)) = (data, mask) else {
                    unreachable!()
                };
                let v = self.graph.scalar(value);
                Ok(VecRepr::Node(self.graph.mask_assign(*d, *m, v)?))
            }
            _ => {
                let v = self.scalar_vec(value);
                let out = self.mask_assign(data, mask, &v);
                if let VecRepr::Vm(_) = v {
                    self.release(&v);
                }
                out
            }
        }
    }

    /// Eager elementwise conditional used by the eager engines' updates.
    fn ifelse_eager(&mut self, cond: &VecRepr, yes: &VecRepr, no: &VecRepr) -> ExecResult<VecRepr> {
        let n = self.vec_len(no).max(self.vec_len(cond));
        match self.cfg.kind {
            EngineKind::PlainR => {
                let (VecRepr::Vm(c), VecRepr::Vm(y), VecRepr::Vm(nn)) = (cond, yes, no) else {
                    unreachable!()
                };
                let (c, y, nn) = (*c, *y, *nn);
                let (cl, yl, nl) = (self.heap.len(c), self.heap.len(y), self.heap.len(nn));
                let dst = self.heap.alloc(n);
                for i in 0..n {
                    let cv = self.heap.get(c, i % cl);
                    let v = if cv != 0.0 {
                        self.heap.get(y, i % yl)
                    } else {
                        self.heap.get(nn, i % nl)
                    };
                    self.heap.set(dst, i, v);
                }
                self.count_ops(n);
                Ok(VecRepr::Vm(dst))
            }
            EngineKind::Strawman => {
                let (VecRepr::Table(c), VecRepr::Table(y), VecRepr::Table(nn)) = (cond, yes, no)
                else {
                    unreachable!()
                };
                let (cl, yl, nl) = (c.vec.len(), y.vec.len(), nn.vec.len());
                let out = DenseVector::create_wide(&self.ctx, n, None)?;
                let chunk = self.chunk();
                let mut buf = vec![0.0; chunk];
                let mut at = 0;
                while at < n {
                    let take = chunk.min(n - at);
                    for i in 0..take {
                        let idx = at + i;
                        let cv = c.vec.get(idx % cl)?;
                        buf[i] = if cv != 0.0 {
                            y.vec.get(idx % yl)?
                        } else {
                            nn.vec.get(idx % nl)?
                        };
                    }
                    out.write_range(at, &buf[..take])?;
                    at += take;
                }
                out.flush()?;
                self.count_ops(n);
                Ok(VecRepr::Table(Rc::new(StrawTable {
                    owned: true,
                    vec: out,
                })))
            }
            _ => unreachable!(),
        }
    }

    /// A small in-memory vector value (R's `c(...)`). Deferred engines get
    /// a `Literal` node — the optimizer can then see the values, exactly
    /// like RIOT-DB's optimizer sees the small `S` table of Example 1.
    pub(crate) fn literal(&mut self, values: Vec<f64>) -> ExecResult<VecRepr> {
        match self.cfg.kind {
            EngineKind::MatNamed | EngineKind::Riot => {
                Ok(VecRepr::Node(self.graph.literal(values)))
            }
            EngineKind::PlainR => {
                let id = self.heap.alloc(values.len().max(1));
                if !values.is_empty() {
                    self.heap.write_chunk(id, 0, &values);
                }
                Ok(VecRepr::Vm(id))
            }
            EngineKind::Strawman => {
                let vec = DenseVector::create_wide(&self.ctx, values.len(), None)?;
                if !values.is_empty() {
                    vec.write_range(0, &values)?;
                }
                Ok(VecRepr::Table(Rc::new(StrawTable { owned: true, vec })))
            }
        }
    }

    /// Functional indexed update `data[index] <- value` (value recycled to
    /// the index length).
    pub(crate) fn sub_assign(
        &mut self,
        data: &VecRepr,
        index: &VecRepr,
        value: &VecRepr,
    ) -> ExecResult<VecRepr> {
        self.governed(|rt| rt.sub_assign_ungoverned(data, index, value))
    }

    fn sub_assign_ungoverned(
        &mut self,
        data: &VecRepr,
        index: &VecRepr,
        value: &VecRepr,
    ) -> ExecResult<VecRepr> {
        match self.cfg.kind {
            EngineKind::MatNamed | EngineKind::Riot => {
                let (VecRepr::Node(d), VecRepr::Node(i), VecRepr::Node(v)) = (data, index, value)
                else {
                    unreachable!()
                };
                Ok(VecRepr::Node(self.graph.sub_assign(*d, *i, *v)?))
            }
            EngineKind::PlainR => {
                let (VecRepr::Vm(d), VecRepr::Vm(i), VecRepr::Vm(v)) = (data, index, value) else {
                    unreachable!()
                };
                let (d, i, v) = (*d, *i, *v);
                let n = self.heap.len(d);
                let k = self.heap.len(i);
                let vl = self.heap.len(v);
                // Copy-on-write: R duplicates the vector before updating.
                let dst = self.heap.alloc(n);
                let chunk = self.chunk();
                let mut buf = vec![0.0; chunk];
                let mut at = 0;
                while at < n {
                    let take = chunk.min(n - at);
                    self.heap.read_chunk(d, at, &mut buf[..take]);
                    self.heap.write_chunk(dst, at, &buf[..take]);
                    at += take;
                }
                for t in 0..k {
                    let raw = self.heap.get(i, t) as i64;
                    if raw < 1 || raw as usize > n {
                        return Err(ExecError::Expr(crate::expr::ExprError::IndexOutOfBounds {
                            index: raw,
                            len: n,
                        }));
                    }
                    let val = self.heap.get(v, t % vl);
                    self.heap.set(dst, raw as usize - 1, val);
                }
                self.count_ops(n + k);
                Ok(VecRepr::Vm(dst))
            }
            EngineKind::Strawman => {
                let (VecRepr::Table(dt), VecRepr::Table(it), VecRepr::Table(vt)) =
                    (data, index, value)
                else {
                    unreachable!()
                };
                let n = dt.vec.len();
                let k = it.vec.len();
                let vl = vt.vec.len();
                let out = DenseVector::create_wide(&self.ctx, n, None)?;
                let chunk = self.chunk();
                let mut buf = vec![0.0; chunk];
                let mut at = 0;
                while at < n {
                    let take = chunk.min(n - at);
                    dt.vec.read_range(at, &mut buf[..take])?;
                    out.write_range(at, &buf[..take])?;
                    at += take;
                }
                for t in 0..k {
                    let raw = it.vec.get(t)? as i64;
                    if raw < 1 || raw as usize > n {
                        return Err(ExecError::Expr(crate::expr::ExprError::IndexOutOfBounds {
                            index: raw,
                            len: n,
                        }));
                    }
                    out.set(raw as usize - 1, vt.vec.get(t % vl)?)?;
                }
                out.flush()?;
                self.count_ops(n + k);
                Ok(VecRepr::Table(Rc::new(StrawTable {
                    owned: true,
                    vec: out,
                })))
            }
        }
    }

    /// `sample(n, k)`: k distinct 1-based indices, deterministic per seed.
    pub(crate) fn sample(&mut self, n: usize, k: usize) -> ExecResult<VecRepr> {
        assert!(k <= n, "cannot sample {k} from {n} without replacement");
        // Partial Fisher-Yates with a sparse swap map.
        let mut swaps: HashMap<usize, usize> = HashMap::new();
        let mut out = Vec::with_capacity(k);
        for i in 0..k {
            let j = self.rng.gen_range(i..n);
            let vi = *swaps.get(&i).unwrap_or(&i);
            let vj = *swaps.get(&j).unwrap_or(&j);
            swaps.insert(j, vi);
            swaps.insert(i, vj);
            out.push((vj + 1) as f64);
        }
        match self.cfg.kind {
            EngineKind::MatNamed | EngineKind::Riot => Ok(VecRepr::Node(self.graph.literal(out))),
            EngineKind::PlainR => {
                let id = self.heap.alloc(k);
                self.heap.write_chunk(id, 0, &out);
                Ok(VecRepr::Vm(id))
            }
            EngineKind::Strawman => {
                let vec = DenseVector::create_wide(&self.ctx, k, None)?;
                vec.write_range(0, &out)?;
                Ok(VecRepr::Table(Rc::new(StrawTable { owned: true, vec })))
            }
        }
    }

    /// The sequence `start..=end` (R's `start:end`).
    pub(crate) fn range(&mut self, start: i64, end: i64) -> ExecResult<VecRepr> {
        assert!(end >= start, "descending ranges not supported");
        let len = (end - start + 1) as usize;
        match self.cfg.kind {
            EngineKind::MatNamed | EngineKind::Riot => {
                Ok(VecRepr::Node(self.graph.range(start, len)))
            }
            EngineKind::PlainR => {
                let id = self.heap.alloc(len);
                let data: Vec<f64> = (0..len).map(|i| (start + i as i64) as f64).collect();
                self.heap.write_chunk(id, 0, &data);
                Ok(VecRepr::Vm(id))
            }
            EngineKind::Strawman => {
                let vec = DenseVector::create_wide(&self.ctx, len, None)?;
                let data: Vec<f64> = (0..len).map(|i| (start + i as i64) as f64).collect();
                vec.write_range(0, &data)?;
                Ok(VecRepr::Table(Rc::new(StrawTable { owned: true, vec })))
            }
        }
    }

    /// Reduce a vector to a scalar (forces evaluation on all engines, but
    /// deferred engines stream without materializing).
    pub(crate) fn aggregate(&mut self, op: AggOp, v: &VecRepr) -> ExecResult<f64> {
        self.governed(|rt| rt.aggregate_ungoverned(op, v))
    }

    fn aggregate_ungoverned(&mut self, op: AggOp, v: &VecRepr) -> ExecResult<f64> {
        match self.cfg.kind {
            EngineKind::MatNamed | EngineKind::Riot => {
                let VecRepr::Node(id) = v else { unreachable!() };
                let span = self.span_begin("aggregate");
                let mut root = self.graph.agg(op, *id);
                if self.cfg.kind == EngineKind::Riot {
                    let (r, stats) = optimize(&mut self.graph, root, &self.cfg.opt.clone());
                    self.last_opt_stats = stats;
                    root = r;
                    self.record_opt_events(root);
                    self.spill_shared(root)?;
                }
                let detail = self.detail_of(root);
                let Node::Agg { op, input } = *self.graph.node(root) else {
                    // Optimizer folded the aggregate to a scalar.
                    if let Node::Scalar(c) = *self.graph.node(root) {
                        self.span_end(span, detail);
                        return Ok(c);
                    }
                    unreachable!("agg root stays an agg");
                };
                let out = self.aggregate_node(op, input);
                self.span_end(span, detail);
                out
            }
            EngineKind::PlainR => {
                let VecRepr::Vm(id) = v else { unreachable!() };
                let id = *id;
                let n = self.heap.len(id);
                let chunk = self.chunk();
                let mut buf = vec![0.0; chunk];
                let mut acc = op.init();
                let mut at = 0;
                while at < n {
                    let take = chunk.min(n - at);
                    self.heap.read_chunk(id, at, &mut buf[..take]);
                    for &x in &buf[..take] {
                        acc = op.fold(acc, x);
                    }
                    at += take;
                }
                if op == AggOp::Mean && n > 0 {
                    acc /= n as f64;
                }
                self.count_ops(n);
                Ok(acc)
            }
            EngineKind::Strawman => {
                let VecRepr::Table(t) = v else { unreachable!() };
                let n = t.vec.len();
                let chunk = self.chunk();
                let mut buf = vec![0.0; chunk];
                let mut acc = op.init();
                let mut at = 0;
                while at < n {
                    self.ctx.governor().checkpoint("strawman.unop.chunk")?;
                    let take = chunk.min(n - at);
                    self.ctx.governor().add_flops(take as u64);
                    t.vec.read_range(at, &mut buf[..take])?;
                    for &x in &buf[..take] {
                        acc = op.fold(acc, x);
                    }
                    at += take;
                }
                if op == AggOp::Mean && n > 0 {
                    acc /= n as f64;
                }
                self.count_ops(n);
                Ok(acc)
            }
        }
    }

    // ================= forcing =================

    /// Bind `name` (engine-specific). For `MatNamed` this materializes the
    /// node to disk — the defining behaviour of that strategy.
    pub(crate) fn assign(&mut self, v: &VecRepr) -> ExecResult<()> {
        if self.cfg.kind == EngineKind::MatNamed {
            if let VecRepr::Node(id) = v {
                self.force_vector_to_disk(*id)?;
            }
        }
        Ok(())
    }

    /// Materialize node `id` to a stored vector (idempotent).
    pub(crate) fn force_vector_to_disk(&mut self, id: NodeId) -> ExecResult<DenseVector> {
        self.governed(|rt| rt.force_vector_to_disk_ungoverned(id))
    }

    fn force_vector_to_disk_ungoverned(&mut self, id: NodeId) -> ExecResult<DenseVector> {
        if let Some(v) = self.materialized.get(&id) {
            return Ok(v.clone());
        }
        // Sources are already on disk.
        if let Node::VecSource { source, .. } = self.graph.node(id) {
            return Ok(self.vec_sources[&source.0].clone());
        }
        let span = self.span_begin("materialize");
        let detail = self.detail_of(id);
        let len = self.graph.shape(id).len();
        let pipe = self.compile(id, len)?;
        let ctx = Arc::clone(&self.ctx);
        let vec = materialize(pipe, &ctx, None)?;
        vec.flush()?;
        self.materialized.insert(id, vec.clone());
        self.span_end(span, detail);
        Ok(vec)
    }

    /// Fully evaluate a vector value into memory (the `print` forcing
    /// point). Riot optimizes the whole reachable DAG here.
    pub(crate) fn collect(&mut self, v: &VecRepr) -> ExecResult<Vec<f64>> {
        self.governed(|rt| rt.collect_ungoverned(v))
    }

    fn collect_ungoverned(&mut self, v: &VecRepr) -> ExecResult<Vec<f64>> {
        match (&self.cfg.kind, v) {
            (EngineKind::PlainR, VecRepr::Vm(id)) => {
                let id = *id;
                self.count_ops(self.heap.len(id));
                Ok(self.heap.to_vec(id))
            }
            (EngineKind::Strawman, VecRepr::Table(t)) => Ok(t.vec.to_vec()?),
            (EngineKind::MatNamed, VecRepr::Node(id)) => {
                let id = *id;
                if let Some(vec) = self.materialized.get(&id) {
                    return Ok(vec.to_vec()?);
                }
                let span = self.span_begin("collect");
                let detail = self.detail_of(id);
                let len = self.graph.shape(id).len();
                self.count_ops(len);
                if let Some(out) = self.try_parallel_collect(id, len)? {
                    self.span_end(span, detail);
                    return Ok(out);
                }
                let pipe = governed(self.compile(id, len)?, &self.ctx, "pipeline.collect.chunk");
                let out = drain_to_vec(pipe)?;
                self.span_end(span, detail);
                Ok(out)
            }
            (EngineKind::Riot, VecRepr::Node(id)) => {
                let span = self.span_begin("collect");
                let cfg = self.cfg.opt;
                let (root, stats) = optimize(&mut self.graph, *id, &cfg);
                self.last_opt_stats = stats;
                self.record_opt_events(root);
                self.spill_shared(root)?;
                let detail = self.detail_of(root);
                let len = self.graph.shape(root).len();
                self.count_ops(len);
                if let Some(out) = self.try_parallel_collect(root, len)? {
                    self.span_end(span, detail);
                    return Ok(out);
                }
                let pipe = governed(
                    self.compile(root, len)?,
                    &self.ctx,
                    "pipeline.collect.chunk",
                );
                let out = drain_to_vec(pipe)?;
                self.span_end(span, detail);
                Ok(out)
            }
            _ => unreachable!("representation matches engine"),
        }
    }

    /// §5's materialization decision: a deferred-only engine would
    /// re-compute a subexpression once per reference, because the pipeline
    /// executes the DAG as a tree. Before compiling, materialize every
    /// non-leaf vector node referenced more than once whose size makes
    /// recomputation more expensive than one write+read pass. Spills land
    /// in the `materialized` cache, so later forcing points reuse them —
    /// "materialization complements deferred evaluation".
    fn spill_shared(&mut self, root: NodeId) -> ExecResult<()> {
        let counts = self.graph.ref_counts(&[root]);
        let threshold = 4 * self.chunk();
        // reachable() is children-first, so inner shared nodes spill
        // before any parent that consumes them is materialized.
        for id in self.graph.reachable(&[root]) {
            if id == root || self.graph.node(id).is_leaf() || self.materialized.contains_key(&id) {
                continue;
            }
            let shared = counts.get(&id).copied().unwrap_or(0) >= 2;
            let big = matches!(self.graph.shape(id), Shape::Vector(n) if n >= threshold);
            if shared && big {
                self.force_vector_to_disk(id)?;
            }
        }
        Ok(())
    }

    // ================= aggregation =================

    /// Aggregate node `input` with `op` through the **fixed partition
    /// tree**: the stream is cut at block-aligned boundaries derived only
    /// from its length (never from the thread count), each partition
    /// folds sequentially from `op.init()`, and the partials combine in
    /// partition order — so `sum()` and friends are **bit-identical
    /// across every `EngineConfig::threads` value**, while still fanning
    /// the partition folds out over the worker pool.
    ///
    /// Inputs at most one partition long take the classic single-fold
    /// path (bit-for-bit the pre-tree sequential aggregate, which keeps
    /// small results — and the cross-engine transparency tests built on
    /// them — exactly stable); inputs the partitioner cannot prove
    /// parallel-safe fall back to it too (one sequential fold is the same
    /// value at every thread count).
    fn aggregate_node(&mut self, op: AggOp, input: NodeId) -> ExecResult<f64> {
        let len = self.graph.shape(input).len();
        self.count_ops(len);
        let epb = self.ctx.elems_per_block();
        let align = self.chunk().max(epb).div_ceil(epb) * epb;
        let part = 4 * align;
        if len <= part || !self.parallel_safe(input, len) {
            let pipe = governed(self.compile(input, len)?, &self.ctx, "pipeline.agg.chunk");
            return drain_agg(pipe, op);
        }
        // Probe restrictability once, so the tree-vs-fallback decision is
        // identical at every thread count (`parallel_safe` is necessary,
        // but `restrict` is the authority; a partially restricted tree
        // must be discarded per the `Pipe::restrict` contract).
        {
            let mut probe = self.compile(input, len)?;
            if !probe.restrict(0, len) {
                let pipe = governed(self.compile(input, len)?, &self.ctx, "pipeline.agg.chunk");
                return drain_agg(pipe, op);
            }
        }
        let spans: Vec<(usize, usize)> = (0..len)
            .step_by(part)
            .map(|s| (s, part.min(len - s)))
            .collect();
        let threads = self.cfg.threads.max(1);
        let partials = if threads <= 1 {
            // One pass over a single pipe with the accumulator reset at
            // partition boundaries: identical partials, and the exact
            // device-I/O sequence of the old sequential drain.
            let mut pipe = governed(self.compile(input, len)?, &self.ctx, "pipeline.agg.chunk");
            let mut partials = Vec::with_capacity(spans.len());
            let mut buf = Vec::new();
            let mut at = 0usize;
            let mut acc = op.init();
            loop {
                let n = pipe.next_into(&mut buf)?;
                if n == 0 {
                    break;
                }
                let mut off = 0usize;
                while off < n {
                    let (s, take) = spans[partials.len()];
                    let span_end = s + take;
                    let step = (span_end - at).min(n - off);
                    for &v in &buf[off..off + step] {
                        acc = op.fold(acc, v);
                    }
                    at += step;
                    off += step;
                    if at == span_end {
                        partials.push(acc);
                        acc = op.init();
                    }
                }
            }
            debug_assert_eq!(at, len, "aggregation consumed the whole stream");
            partials
        } else {
            // One restricted pipe per span, folded on scoped workers.
            let mut pipes = Vec::with_capacity(spans.len());
            for &(s, take) in &spans {
                let mut pipe = self.compile(input, len)?;
                if !pipe.restrict(s, take) {
                    // Unreachable after the probe for every built-in pipe;
                    // kept graceful for future pipes with span-dependent
                    // restriction.
                    let pipe = governed(self.compile(input, len)?, &self.ctx, "pipeline.agg.chunk");
                    return drain_agg(pipe, op);
                }
                pipes.push(governed(pipe, &self.ctx, "pipeline.agg.part"));
            }
            fold_partitioned(pipes, op, threads)?
        };
        let mut acc = partials[0];
        for &p in &partials[1..] {
            acc = op.fold(acc, p);
        }
        if op == AggOp::Mean && len > 0 {
            acc /= len as f64;
        }
        Ok(acc)
    }

    // ================= parallel pipeline =================

    /// True when `id` can be compiled into independently restrictable
    /// partitions whose combined execution is observably identical to the
    /// sequential drain (same elements, same counted I/O, same op count).
    ///
    /// Conservative by design: anything that would run side effects once
    /// per partition-compile (aggregates, scalar folding of non-literal
    /// scalars, recycled operands that drain their short side) falls back
    /// to the sequential path, and so do gathers — their probes touch
    /// blocks shared across partitions, so under out-of-core pressure the
    /// interleaved miss/eviction sequence would diverge from the
    /// sequential one. `SubAssign` is safe because its forced
    /// materialization is memoized (the first compile does the work,
    /// identical to sequential) and then scans like a stored vector.
    fn parallel_safe(&self, id: NodeId, out_len: usize) -> bool {
        match self.graph.shape(id) {
            Shape::Scalar => return matches!(self.graph.node(id), Node::Scalar(_)),
            Shape::Vector(l) if l == out_len => {}
            _ => return false, // recycled operand or matrix value
        }
        if self.materialized.contains_key(&id) {
            return true; // compiles to a restrictable VecScan
        }
        match self.graph.node(id) {
            Node::VecSource { .. } | Node::Literal(_) | Node::Range { .. } => true,
            Node::Map { input, .. } => self.parallel_safe(*input, out_len),
            Node::Zip { lhs, rhs, .. } => {
                self.parallel_safe(*lhs, out_len) && self.parallel_safe(*rhs, out_len)
            }
            Node::IfElse { cond, yes, no } => {
                self.parallel_safe(*cond, out_len)
                    && self.parallel_safe(*yes, out_len)
                    && self.parallel_safe(*no, out_len)
            }
            Node::MaskAssign { data, mask, value } => {
                self.parallel_safe(*data, out_len)
                    && self.parallel_safe(*mask, out_len)
                    && self.parallel_safe(*value, out_len)
            }
            Node::SubAssign { .. } => true, // forced once, then a VecScan
            _ => false,
        }
    }

    /// Attempt a partitioned parallel drain of node `id` (`len` elements):
    /// compile one pipe per chunk-aligned span, restrict each to its span,
    /// and drain them on `cfg.threads` scoped workers into one output
    /// buffer. Returns `None` (and performs no partial work the sequential
    /// path would not) when the plan is not parallel-safe.
    fn try_parallel_collect(&mut self, id: NodeId, len: usize) -> ExecResult<Option<Vec<f64>>> {
        let threads = self.cfg.threads;
        // Partition boundaries must be **block-aligned** (in elements):
        // two partitions sharing a boundary block would each pin it, and
        // under eviction pressure the shared block could be device-read
        // twice, breaking I/O parity with the sequential drain. Chunk
        // alignment additionally keeps per-partition streams starting on
        // chunk boundaries when the chunk is block-sized or larger.
        let epb = self.ctx.elems_per_block();
        let align = self.chunk().max(epb).div_ceil(epb) * epb;
        if threads <= 1 || len < 2 * align || !self.parallel_safe(id, len) {
            return Ok(None);
        }
        let per = len.div_ceil(threads).div_ceil(align) * align;
        let mut spans = Vec::new();
        let mut start = 0;
        while start < len {
            let take = per.min(len - start);
            spans.push((start, take));
            start += take;
        }
        if spans.len() <= 1 {
            return Ok(None);
        }
        let mut out = vec![0.0; len];
        {
            let mut slices: Vec<&mut [f64]> = Vec::new();
            let mut rest: &mut [f64] = &mut out;
            for &(_, take) in &spans {
                let (head, tail) = std::mem::take(&mut rest).split_at_mut(take);
                slices.push(head);
                rest = tail;
            }
            let mut parts: Vec<(Box<dyn Pipe>, &mut [f64])> = Vec::with_capacity(spans.len());
            for (&(s, take), slice) in spans.iter().zip(slices) {
                let mut pipe = self.compile(id, len)?;
                if !pipe.restrict(s, take) {
                    return Ok(None);
                }
                parts.push((governed(pipe, &self.ctx, "pipeline.collect.part"), slice));
            }
            drain_partitioned(parts, threads)?;
        }
        Ok(Some(out))
    }

    // ================= pipeline compilation =================

    /// Compile node `id` into a pipe producing `out_len` elements
    /// (broadcasting scalars and recycling short operands).
    pub(crate) fn compile(&mut self, id: NodeId, out_len: usize) -> ExecResult<Box<dyn Pipe>> {
        let shape = self.graph.shape(id);
        let own_len = shape.len();
        if matches!(shape, Shape::Scalar) {
            let value = self.scalar_value(id)?;
            return Ok(Box::new(ConstScan::new(value, out_len, self.chunk())));
        }
        if own_len != out_len {
            // Recycled operand: materialize the short side in memory.
            debug_assert!(own_len < out_len && out_len % own_len == 0);
            let inner = governed(
                self.compile(id, own_len)?,
                &self.ctx,
                "pipeline.cycle.chunk",
            );
            let data = drain_to_vec(inner)?;
            return Ok(Box::new(CycleScan::new(data, out_len, self.chunk())));
        }
        if let Some(vec) = self.materialized.get(&id) {
            return Ok(Box::new(VecScan::new(vec.clone(), self.chunk())));
        }
        let node = self.graph.node(id).clone();
        Ok(match node {
            Node::VecSource { source, .. } => Box::new(VecScan::new(
                self.vec_sources[&source.0].clone(),
                self.chunk(),
            )),
            Node::Literal(data) => Box::new(LiteralScan::new(data, self.chunk())),
            Node::Range { start, len } => Box::new(RangeScan::new(start, len, self.chunk())),
            Node::Scalar(_) => unreachable!("handled above"),
            Node::Map { op, input } => {
                let input = self.compile(input, out_len)?;
                Box::new(MapPipe::new(op, input, Arc::clone(&self.cpu_ops)))
            }
            Node::Zip { op, lhs, rhs } => {
                let lhs = self.compile(lhs, out_len)?;
                let rhs = self.compile(rhs, out_len)?;
                Box::new(ZipPipe::new(op, lhs, rhs, Arc::clone(&self.cpu_ops)))
            }
            Node::IfElse { cond, yes, no } => {
                let cond = self.compile(cond, out_len)?;
                let yes = self.compile(yes, out_len)?;
                let no = self.compile(no, out_len)?;
                Box::new(IfElsePipe::new(cond, yes, no, Arc::clone(&self.cpu_ops)))
            }
            Node::Gather { data, index } => {
                let idx_len = self.graph.shape(index).len();
                let index = self.compile(index, idx_len)?;
                let probe = self.compile_probe(data)?;
                Box::new(GatherPipe::new(index, probe, Arc::clone(&self.cpu_ops)))
            }
            Node::SubAssign { data, index, value } => {
                let vec = self.force_subassign(id, data, index, value)?;
                Box::new(VecScan::new(vec, self.chunk()))
            }
            Node::MaskAssign { data, mask, value } => {
                // Present when the optimizer is off (MatNamed or ablation):
                // execute as the equivalent conditional.
                let cond = self.compile(mask, out_len)?;
                let yes = self.compile(value, out_len)?;
                let no = self.compile(data, out_len)?;
                Box::new(IfElsePipe::new(cond, yes, no, Arc::clone(&self.cpu_ops)))
            }
            Node::MatMul { .. }
            | Node::Transpose { .. }
            | Node::SpTranspose { .. }
            | Node::MatSource { .. }
            | Node::SpMatSource { .. }
            | Node::Densify { .. }
            | Node::Sparsify { .. }
            | Node::Chol { .. }
            | Node::Solve { .. } => {
                return Err(ExecError::Unsupported(
                    "matrix values cannot stream through vector pipelines; use collect_matrix"
                        .to_string(),
                ))
            }
            Node::Agg { op, input } => {
                let v = self.aggregate_node(op, input)?;
                Box::new(ConstScan::new(v, out_len, self.chunk()))
            }
        })
    }

    /// Evaluate a scalar-shaped node to its value.
    fn scalar_value(&mut self, id: NodeId) -> ExecResult<f64> {
        match self.graph.node(id).clone() {
            Node::Scalar(c) => Ok(c),
            Node::Agg { op, input } => self.aggregate_node(op, input),
            Node::Map { op, input } => {
                let x = self.scalar_value(input)?;
                self.count_ops(1);
                Ok(op.apply(x))
            }
            Node::Zip { op, lhs, rhs } => {
                let a = self.scalar_value(lhs)?;
                let b = self.scalar_value(rhs)?;
                self.count_ops(1);
                Ok(op.apply(a, b))
            }
            Node::IfElse { cond, yes, no } => {
                let c = self.scalar_value(cond)?;
                if c != 0.0 {
                    self.scalar_value(yes)
                } else {
                    self.scalar_value(no)
                }
            }
            other => Err(ExecError::Unsupported(format!(
                "scalar evaluation of {other:?}"
            ))),
        }
    }

    /// Random-access side of a gather: leaves probe directly; anything
    /// else is materialized first (RIOT's "materialization complements
    /// deferred evaluation").
    fn compile_probe(&mut self, id: NodeId) -> ExecResult<Probe> {
        if let Some(vec) = self.materialized.get(&id) {
            return Ok(Probe::Stored(vec.clone()));
        }
        match self.graph.node(id).clone() {
            Node::VecSource { source, .. } => {
                Ok(Probe::Stored(self.vec_sources[&source.0].clone()))
            }
            Node::Literal(data) => Ok(Probe::Mem(data)),
            Node::Range { start, len } => Ok(Probe::Range { start, len }),
            _ => {
                let vec = self.force_vector_to_disk(id)?;
                Ok(Probe::Stored(vec))
            }
        }
    }

    /// Materialize `data`, then overwrite positions `index` with `value`.
    fn force_subassign(
        &mut self,
        node_id: NodeId,
        data: NodeId,
        index: NodeId,
        value: NodeId,
    ) -> ExecResult<DenseVector> {
        self.governed(|rt| rt.force_subassign_ungoverned(node_id, data, index, value))
    }

    fn force_subassign_ungoverned(
        &mut self,
        node_id: NodeId,
        data: NodeId,
        index: NodeId,
        value: NodeId,
    ) -> ExecResult<DenseVector> {
        if let Some(v) = self.materialized.get(&node_id) {
            return Ok(v.clone());
        }
        let len = self.graph.shape(data).len();
        let pipe = self.compile(data, len)?;
        let ctx = Arc::clone(&self.ctx);
        let vec = materialize(pipe, &ctx, None)?;
        let idx_len = self.graph.shape(index).len();
        let idx = drain_to_vec(governed(
            self.compile(index, idx_len)?,
            &self.ctx,
            "pipeline.collect.chunk",
        ))?;
        let vals = drain_to_vec(governed(
            self.compile(value, idx_len)?,
            &self.ctx,
            "pipeline.collect.chunk",
        ))?;
        for (k, &raw) in idx.iter().enumerate() {
            let i = raw as i64;
            if i < 1 || i as usize > vec.len() {
                return Err(ExecError::Expr(crate::expr::ExprError::IndexOutOfBounds {
                    index: i,
                    len: vec.len(),
                }));
            }
            vec.set(i as usize - 1, vals[k])?;
        }
        self.count_ops(len + idx.len());
        self.materialized.insert(node_id, vec.clone());
        Ok(vec)
    }

    // ================= matrices =================

    /// Elementwise conditional `ifelse(cond, yes, no)`.
    pub(crate) fn ifelse(
        &mut self,
        cond: &VecRepr,
        yes: &VecRepr,
        no: &VecRepr,
    ) -> ExecResult<VecRepr> {
        self.governed(|rt| rt.ifelse_ungoverned(cond, yes, no))
    }

    fn ifelse_ungoverned(
        &mut self,
        cond: &VecRepr,
        yes: &VecRepr,
        no: &VecRepr,
    ) -> ExecResult<VecRepr> {
        match self.cfg.kind {
            EngineKind::MatNamed | EngineKind::Riot => {
                let (VecRepr::Node(c), VecRepr::Node(y), VecRepr::Node(n)) = (cond, yes, no) else {
                    unreachable!()
                };
                Ok(VecRepr::Node(self.graph.if_else(*c, *y, *n)?))
            }
            _ => self.ifelse_eager(cond, yes, no),
        }
    }

    /// Matrix shape `(rows, cols)`.
    pub(crate) fn mat_shape(&self, m: &MatRepr) -> (usize, usize) {
        match m {
            MatRepr::Node(id) => match self.graph.shape(*id) {
                Shape::Matrix(r, c) => (r, c),
                _ => unreachable!("matrix nodes have matrix shapes"),
            },
            MatRepr::Vm { rows, cols, .. } => (*rows, *cols),
            MatRepr::Stored(sm) => sm.mat.shape(),
        }
    }

    /// Matrix transpose.
    pub(crate) fn transpose(&mut self, m: &MatRepr) -> ExecResult<MatRepr> {
        self.governed(|rt| rt.transpose_ungoverned(m))
    }

    fn transpose_ungoverned(&mut self, m: &MatRepr) -> ExecResult<MatRepr> {
        match self.cfg.kind {
            EngineKind::MatNamed | EngineKind::Riot => {
                let MatRepr::Node(id) = m else { unreachable!() };
                Ok(MatRepr::Node(self.graph.transpose(*id)?))
            }
            EngineKind::PlainR => {
                let MatRepr::Vm { id, rows, cols } = m else {
                    unreachable!()
                };
                let (id, rows, cols) = (*id, *rows, *cols);
                let t = self.heap.alloc(rows * cols);
                for i in 0..rows {
                    for j in 0..cols {
                        let v = self.heap.get(id, i * cols + j);
                        self.heap.set(t, j * rows + i, v);
                    }
                }
                self.count_ops(rows * cols);
                Ok(MatRepr::Vm {
                    id: t,
                    rows: cols,
                    cols: rows,
                })
            }
            EngineKind::Strawman => {
                let MatRepr::Stored(sm) = m else {
                    unreachable!()
                };
                let t = sm
                    .mat
                    .transpose(MatrixLayout::ColMajor, TileOrder::ColMajor, None)?;
                Ok(MatRepr::Stored(Rc::new(StrawMat {
                    owned: true,
                    mat: t,
                })))
            }
        }
    }

    /// Matrix product.
    pub(crate) fn matmul(&mut self, lhs: &MatRepr, rhs: &MatRepr) -> ExecResult<MatRepr> {
        self.governed(|rt| rt.matmul_ungoverned(lhs, rhs))
    }

    fn matmul_ungoverned(&mut self, lhs: &MatRepr, rhs: &MatRepr) -> ExecResult<MatRepr> {
        match self.cfg.kind {
            EngineKind::MatNamed | EngineKind::Riot => {
                let (MatRepr::Node(l), MatRepr::Node(r)) = (lhs, rhs) else {
                    unreachable!()
                };
                Ok(MatRepr::Node(self.graph.matmul(*l, *r)?))
            }
            EngineKind::PlainR => {
                let (
                    MatRepr::Vm {
                        id: a,
                        rows: n1,
                        cols: n2,
                    },
                    MatRepr::Vm {
                        id: b,
                        rows: rb,
                        cols: n3,
                    },
                ) = (lhs, rhs)
                else {
                    unreachable!()
                };
                assert_eq!(n2, rb, "non-conformable matrices");
                let (a, b) = (*a, *b);
                let (n1, n2, n3) = (*n1, *n2, *n3);
                let t = self.heap.alloc(n1 * n3);
                // R's internal loop (Example 2): j outer, i middle, k inner.
                for j in 0..n3 {
                    self.ctx.governor().checkpoint("plainr.matmul.col")?;
                    for i in 0..n1 {
                        let mut acc = 0.0;
                        for k in 0..n2 {
                            acc += self.heap.get(a, i * n2 + k) * self.heap.get(b, k * n3 + j);
                        }
                        self.heap.set(t, i * n3 + j, acc);
                    }
                    self.ctx.governor().add_flops((n1 * n2) as u64);
                }
                self.count_ops(n1 * n2 * n3);
                Ok(MatRepr::Vm {
                    id: t,
                    rows: n1,
                    cols: n3,
                })
            }
            EngineKind::Strawman => {
                let (MatRepr::Stored(a), MatRepr::Stored(b)) = (lhs, rhs) else {
                    unreachable!()
                };
                let (t, flops) = matmul::matmul_naive(&a.mat, &b.mat, None)?;
                self.count_ops(flops as usize);
                Ok(MatRepr::Stored(Rc::new(StrawMat {
                    owned: true,
                    mat: t,
                })))
            }
        }
    }

    /// Cholesky factorization `chol(a)`: the lower-triangular `L` with
    /// `L · Lᵀ = a`. Deferred engines record a [`Node::Chol`]; the eager
    /// engines factor immediately in their own representation.
    pub(crate) fn mat_chol(&mut self, m: &MatRepr) -> ExecResult<MatRepr> {
        self.governed(|rt| rt.mat_chol_ungoverned(m))
    }

    fn mat_chol_ungoverned(&mut self, m: &MatRepr) -> ExecResult<MatRepr> {
        match self.cfg.kind {
            EngineKind::MatNamed | EngineKind::Riot => {
                let MatRepr::Node(id) = m else { unreachable!() };
                Ok(MatRepr::Node(self.graph.chol(*id)?))
            }
            EngineKind::PlainR => {
                let MatRepr::Vm { id, rows, cols } = m else {
                    unreachable!()
                };
                let (id, rows, cols) = (*id, *rows, *cols);
                if rows != cols || rows == 0 {
                    return Err(ExecError::Expr(ExprError::Expected {
                        what: "non-empty square matrix",
                        got: Shape::Matrix(rows, cols),
                    }));
                }
                self.ctx.governor().checkpoint("plainr.chol")?;
                let mut a = self.heap.to_vec(id);
                dense_chol_inplace(&mut a, rows)?;
                self.count_ops(rows * rows * rows / 3 + rows * rows);
                self.ctx
                    .governor()
                    .add_flops((rows * rows * rows / 3 + rows * rows) as u64);
                let t = self.heap.alloc(rows * cols);
                self.heap.write_chunk(t, 0, &a);
                Ok(MatRepr::Vm { id: t, rows, cols })
            }
            EngineKind::Strawman => {
                let MatRepr::Stored(sm) = m else {
                    unreachable!()
                };
                let (l, flops) = factor::chol_tiled(&sm.mat, self.mem_elems(), None)?;
                self.count_ops(flops as usize);
                Ok(MatRepr::Stored(Rc::new(StrawMat {
                    owned: true,
                    mat: l,
                })))
            }
        }
    }

    /// Linear solve `solve(a, b)` for symmetric positive definite `a` —
    /// always Cholesky-backed; no engine materializes an inverse.
    pub(crate) fn mat_solve(&mut self, a: &MatRepr, b: &MatRepr) -> ExecResult<MatRepr> {
        self.governed(|rt| rt.mat_solve_ungoverned(a, b))
    }

    fn mat_solve_ungoverned(&mut self, a: &MatRepr, b: &MatRepr) -> ExecResult<MatRepr> {
        match self.cfg.kind {
            EngineKind::MatNamed | EngineKind::Riot => {
                let (MatRepr::Node(l), MatRepr::Node(r)) = (a, b) else {
                    unreachable!()
                };
                Ok(MatRepr::Node(self.graph.solve(*l, *r)?))
            }
            EngineKind::PlainR => {
                let (
                    MatRepr::Vm {
                        id: ia,
                        rows: n,
                        cols: nc,
                    },
                    MatRepr::Vm {
                        id: ib,
                        rows: br,
                        cols: m,
                    },
                ) = (a, b)
                else {
                    unreachable!()
                };
                let (ia, ib, n, nc, br, m) = (*ia, *ib, *n, *nc, *br, *m);
                if n != nc || n == 0 {
                    return Err(ExecError::Expr(ExprError::Expected {
                        what: "non-empty square matrix",
                        got: Shape::Matrix(n, nc),
                    }));
                }
                if br != n || m == 0 {
                    return Err(ExecError::Expr(ExprError::MatMulDims {
                        lhs: Shape::Matrix(n, nc),
                        rhs: Shape::Matrix(br, m),
                    }));
                }
                self.ctx.governor().checkpoint("plainr.solve")?;
                let mut l = self.heap.to_vec(ia);
                dense_chol_inplace(&mut l, n)?;
                let mut x = self.heap.to_vec(ib);
                dense_cholesky_substitute(&l, &mut x, n, m);
                self.count_ops(n * n * n / 3 + 2 * n * n * m);
                self.ctx
                    .governor()
                    .add_flops((n * n * n / 3 + 2 * n * n * m) as u64);
                let t = self.heap.alloc(n * m);
                self.heap.write_chunk(t, 0, &x);
                Ok(MatRepr::Vm {
                    id: t,
                    rows: n,
                    cols: m,
                })
            }
            EngineKind::Strawman => {
                let (MatRepr::Stored(sa), MatRepr::Stored(sb)) = (a, b) else {
                    unreachable!()
                };
                let (x, flops) =
                    factor::cholesky_solve(&sa.mat, &sb.mat, self.mem_elems(), 1, None)?;
                self.count_ops(flops as usize);
                Ok(MatRepr::Stored(Rc::new(StrawMat {
                    owned: true,
                    mat: x,
                })))
            }
        }
    }

    /// Fully evaluate a matrix value to row-major data.
    pub(crate) fn collect_matrix(&mut self, m: &MatRepr) -> ExecResult<(usize, usize, Vec<f64>)> {
        self.governed(|rt| rt.collect_matrix_ungoverned(m))
    }

    fn collect_matrix_ungoverned(&mut self, m: &MatRepr) -> ExecResult<(usize, usize, Vec<f64>)> {
        match (&self.cfg.kind, m) {
            (EngineKind::PlainR, MatRepr::Vm { id, rows, cols }) => {
                let data = self.heap.to_vec(*id);
                Ok((*rows, *cols, data))
            }
            (EngineKind::Strawman, MatRepr::Stored(sm)) => {
                let (r, c) = sm.mat.shape();
                Ok((r, c, sm.mat.to_rows()?))
            }
            (_, MatRepr::Node(id)) => {
                let span = self.span_begin("collect_matrix");
                let mut root = *id;
                if self.cfg.kind == EngineKind::Riot {
                    let cfg = self.cfg.opt;
                    let (r, stats) = optimize(&mut self.graph, root, &cfg);
                    self.last_opt_stats = stats;
                    root = r;
                    self.record_opt_events(root);
                }
                let detail = self.detail_of(root);
                let out = match self.force_matrix_value(root)? {
                    MatValue::Dense(mat) => {
                        let (r, c) = mat.shape();
                        (r, c, mat.to_rows()?)
                    }
                    MatValue::Sparse(sp) => {
                        let (r, c) = sp.shape();
                        (r, c, sp.to_rows()?)
                    }
                };
                self.span_end(span, detail);
                Ok(out)
            }
            _ => unreachable!("representation matches engine"),
        }
    }

    /// Materialize a matrix node in whichever physical representation the
    /// plan produces, dispatching `MatMul` to the sparse kernels when an
    /// operand is sparse (the optimizer already densified operands above
    /// the density threshold):
    ///
    /// * sparse x sparse (aligned tiles) -> [`spkernel::spmm`], sparse
    /// * sparse x dense -> [`spkernel::spmdm`], dense accumulator tiles
    /// * dense x sparse -> [`spkernel::dmspm`], dense accumulator strips
    /// * dense x dense -> the configured [`MatMulKernel`]
    ///
    /// and `Transpose`/`SpTranspose` to the native [`spkernel::sptranspose`]
    /// whenever the forced operand is sparse — no combination in the
    /// `{sparse, dense}` product/transpose table densifies implicitly.
    pub(crate) fn force_matrix_value(&mut self, id: NodeId) -> ExecResult<MatValue> {
        self.governed(|rt| rt.force_matrix_value_ungoverned(id))
    }

    fn force_matrix_value_ungoverned(&mut self, id: NodeId) -> ExecResult<MatValue> {
        if let Some(m) = self.mat_materialized.get(&id) {
            return Ok(MatValue::Dense(m.clone()));
        }
        if let Some(s) = self.sparse_materialized.get(&id) {
            return Ok(MatValue::Sparse(s.clone()));
        }
        let out = match self.graph.node(id).clone() {
            Node::MatSource { source, .. } => MatValue::Dense(self.mat_sources[&source.0].clone()),
            Node::SpMatSource { source, .. } => {
                MatValue::Sparse(self.sparse_sources[&source.0].clone())
            }
            Node::Densify { input } => match self.force_matrix_value(input)? {
                MatValue::Sparse(s) => MatValue::Dense(s.to_dense(TileOrder::RowMajor, None)?),
                dense => dense,
            },
            Node::Sparsify { input } => match self.force_matrix_value(input)? {
                MatValue::Dense(d) => MatValue::Sparse(SparseMatrix::from_dense(&d, None)?),
                sparse => sparse,
            },
            Node::MatMul { lhs, rhs } => {
                let a = self.force_matrix_value(lhs)?;
                let b = self.force_matrix_value(rhs)?;
                self.multiply_values(a, b)?
            }
            // Transpose is representation-generic: whatever representation
            // the input forces to, the result keeps it. `SpTranspose` is
            // the optimizer's explicit below-threshold plan; a plain
            // `Transpose` over a sparse value (e.g. under MatNamed, which
            // never optimizes) reaches the same native kernel.
            Node::Transpose { input } | Node::SpTranspose { input } => {
                match self.force_matrix_value(input)? {
                    MatValue::Sparse(s) => {
                        let span = self.span_begin("sptranspose");
                        let detail = if span.token.is_active() {
                            let (r, c) = s.shape();
                            format!("{r}x{c} nnz={}", s.nnz())
                        } else {
                            String::new()
                        };
                        let (t, moved) = spkernel::sptranspose(&s, None)?;
                        self.count_ops(moved as usize);
                        self.span_end(span, detail);
                        MatValue::Sparse(t)
                    }
                    MatValue::Dense(d) => {
                        let span = self.span_begin("transpose");
                        let detail = if span.token.is_active() {
                            let (r, c) = d.shape();
                            format!("{r}x{c}")
                        } else {
                            String::new()
                        };
                        let t = d.transpose(MatrixLayout::Square, TileOrder::RowMajor, None)?;
                        self.span_end(span, detail);
                        MatValue::Dense(t)
                    }
                }
            }
            Node::Chol { input } => {
                let a = self.force_dense_value(input)?;
                let span = self.span_begin("chol");
                let detail = if span.token.is_active() {
                    let (r, c) = a.shape();
                    format!("{r}x{c}")
                } else {
                    String::new()
                };
                let threads = self.cfg.threads.max(1);
                let (l, flops) = factor::chol_tiled_parallel(&a, self.mem_elems(), threads, None)?;
                self.count_ops(flops as usize);
                self.span_end(span, detail);
                MatValue::Dense(l)
            }
            Node::Solve { lhs, rhs } => {
                let a = self.force_dense_value(lhs)?;
                let b = self.force_dense_value(rhs)?;
                let span = self.span_begin("solve");
                let detail = if span.token.is_active() {
                    let (r, c) = a.shape();
                    let (_, m) = b.shape();
                    format!("{r}x{c} \\ {r}x{m}")
                } else {
                    String::new()
                };
                let threads = self.cfg.threads.max(1);
                let (x, flops) = factor::cholesky_solve(&a, &b, self.mem_elems(), threads, None)?;
                self.count_ops(flops as usize);
                self.span_end(span, detail);
                MatValue::Dense(x)
            }
            other => {
                return Err(ExecError::Unsupported(format!(
                    "matrix execution of {other:?}"
                )))
            }
        };
        match &out {
            MatValue::Dense(d) => {
                self.mat_materialized.insert(id, d.clone());
            }
            MatValue::Sparse(s) => {
                self.sparse_materialized.insert(id, s.clone());
            }
        }
        Ok(out)
    }

    /// Force a node and densify the result: the factorization kernels are
    /// dense-only (a Cholesky factor of a sparse matrix fills in anyway).
    fn force_dense_value(&mut self, id: NodeId) -> ExecResult<DenseMatrix> {
        Ok(match self.force_matrix_value(id)? {
            MatValue::Dense(d) => d,
            MatValue::Sparse(s) => s.to_dense(TileOrder::RowMajor, None)?,
        })
    }

    /// One multiplication over materialized operands, choosing a kernel by
    /// representation. The sparse kernels fan their independent strips /
    /// output tiles out over `EngineConfig::threads` workers (`1`, the
    /// default, is the bit-for-bit sequential schedule).
    fn multiply_values(&mut self, a: MatValue, b: MatValue) -> ExecResult<MatValue> {
        let threads = self.cfg.threads.max(1);
        Ok(match (a, b) {
            (MatValue::Sparse(a), MatValue::Sparse(b)) => {
                let (atr, atc) = a.tile_dims();
                if (atr, atc) == b.tile_dims() && atr == atc {
                    let span = self.span_begin("spmm");
                    let detail = if span.token.is_active() {
                        let (ar, ac) = a.shape();
                        let (_, bc) = b.shape();
                        format!("{ar}x{ac} * {ac}x{bc}")
                    } else {
                        String::new()
                    };
                    let (t, flops) = spkernel::spmm_parallel(&a, &b, threads, None)?;
                    self.count_ops(flops as usize);
                    self.span_end(span, detail);
                    MatValue::Sparse(t)
                } else {
                    // Mismatched tilings: fall back to the sparse x dense
                    // kernel on a densified right side.
                    let span = self.span_begin("spmdm");
                    let detail = if span.token.is_active() {
                        let (ar, ac) = a.shape();
                        let (_, bc) = b.shape();
                        format!("{ar}x{ac} * {ac}x{bc}")
                    } else {
                        String::new()
                    };
                    let bd = b.to_dense(TileOrder::RowMajor, None)?;
                    let (t, flops) = spkernel::spmdm_parallel(&a, &bd, threads, None)?;
                    self.count_ops(flops as usize);
                    self.span_end(span, detail);
                    MatValue::Dense(t)
                }
            }
            (MatValue::Sparse(a), MatValue::Dense(b)) => {
                let span = self.span_begin("spmdm");
                let detail = if span.token.is_active() {
                    let (ar, ac) = a.shape();
                    let (_, bc) = b.shape();
                    format!("{ar}x{ac} * {ac}x{bc}")
                } else {
                    String::new()
                };
                let (t, flops) = spkernel::spmdm_parallel(&a, &b, threads, None)?;
                self.count_ops(flops as usize);
                self.span_end(span, detail);
                MatValue::Dense(t)
            }
            (MatValue::Dense(a), MatValue::Sparse(b)) => {
                let span = self.span_begin("dmspm");
                let detail = if span.token.is_active() {
                    let (ar, ac) = a.shape();
                    let (_, bc) = b.shape();
                    format!("{ar}x{ac} * {ac}x{bc}")
                } else {
                    String::new()
                };
                let (t, flops) = spkernel::dmspm_parallel(&a, &b, threads, None)?;
                self.count_ops(flops as usize);
                self.span_end(span, detail);
                MatValue::Dense(t)
            }
            (MatValue::Dense(a), MatValue::Dense(b)) => {
                let span = self.span_begin("matmul");
                let detail = if span.token.is_active() {
                    let (ar, ac) = a.shape();
                    let (_, bc) = b.shape();
                    format!("{ar}x{ac} * {ac}x{bc}")
                } else {
                    String::new()
                };
                let (t, flops) =
                    matmul::multiply(self.cfg.matmul_kernel, &a, &b, self.mem_elems(), None)?;
                self.count_ops(flops as usize);
                self.span_end(span, detail);
                MatValue::Dense(t)
            }
        })
    }

    /// Non-zero count of a matrix value. For a deferred sparse source this
    /// is the catalog statistic (no I/O); anything else is forced and
    /// counted by streaming its tiles.
    pub(crate) fn mat_nnz(&mut self, m: &MatRepr) -> ExecResult<u64> {
        self.governed(|rt| rt.mat_nnz_ungoverned(m))
    }

    fn mat_nnz_ungoverned(&mut self, m: &MatRepr) -> ExecResult<u64> {
        match m {
            MatRepr::Node(id) => {
                if let Node::SpMatSource { nnz, .. } = self.graph.node(*id) {
                    return Ok(*nnz);
                }
                // Forcing point: optimize first under Riot, exactly like
                // collect_matrix, so nnz() executes the same physical
                // plan (and records the same stats) as a collect would.
                let span = self.span_begin("nnz");
                let mut root = *id;
                if self.cfg.kind == EngineKind::Riot {
                    let cfg = self.cfg.opt;
                    let (r, stats) = optimize(&mut self.graph, root, &cfg);
                    self.last_opt_stats = stats;
                    root = r;
                    self.record_opt_events(root);
                }
                let detail = self.detail_of(root);
                let out = match self.force_matrix_value(root)? {
                    MatValue::Sparse(s) => s.nnz(),
                    MatValue::Dense(d) => {
                        let n = count_dense_nnz(&d)?;
                        self.count_ops(d.rows() * d.cols());
                        n
                    }
                };
                self.span_end(span, detail);
                Ok(out)
            }
            MatRepr::Vm { id, rows, cols } => {
                let n = rows * cols;
                let mut count = 0u64;
                for i in 0..n {
                    if self.heap.get(*id, i) != 0.0 {
                        count += 1;
                    }
                }
                self.count_ops(n);
                Ok(count)
            }
            MatRepr::Stored(sm) => {
                let n = count_dense_nnz(&sm.mat)?;
                self.count_ops(sm.mat.rows() * sm.mat.cols());
                Ok(n)
            }
        }
    }

    /// Convert a matrix value to the sparse representation. Deferred
    /// engines defer the conversion as a `Sparsify` node; eager engines
    /// keep their dense representation (like base R, where sparsity lives
    /// in a library the eager engines do not have).
    pub(crate) fn mat_to_sparse(&mut self, m: &MatRepr) -> ExecResult<MatRepr> {
        self.governed(|rt| rt.mat_to_sparse_ungoverned(m))
    }

    fn mat_to_sparse_ungoverned(&mut self, m: &MatRepr) -> ExecResult<MatRepr> {
        match m {
            MatRepr::Node(id) => Ok(MatRepr::Node(self.graph.sparsify(*id)?)),
            other => {
                self.retain_mat(other);
                Ok(other.clone())
            }
        }
    }

    /// Convert a matrix value to the dense representation (`Densify` node
    /// under deferred engines; identity on the eager engines).
    pub(crate) fn mat_to_dense(&mut self, m: &MatRepr) -> ExecResult<MatRepr> {
        self.governed(|rt| rt.mat_to_dense_ungoverned(m))
    }

    fn mat_to_dense_ungoverned(&mut self, m: &MatRepr) -> ExecResult<MatRepr> {
        match m {
            MatRepr::Node(id) => Ok(MatRepr::Node(self.graph.densify(*id)?)),
            other => {
                self.retain_mat(other);
                Ok(other.clone())
            }
        }
    }

    // ================= reference counting (Plain R) =================

    /// Retain an eager value (R assignment aliases).
    pub(crate) fn retain(&mut self, v: &VecRepr) {
        if let VecRepr::Vm(id) = v {
            self.heap.retain(*id);
        }
    }

    /// Release an eager value (R GC of dead intermediates).
    pub(crate) fn release(&mut self, v: &VecRepr) {
        if let VecRepr::Vm(id) = v {
            self.heap.release(*id);
        }
    }

    /// Retain an eager matrix.
    pub(crate) fn retain_mat(&mut self, m: &MatRepr) {
        if let MatRepr::Vm { id, .. } = m {
            self.heap.retain(*id);
        }
    }

    /// Release an eager matrix.
    pub(crate) fn release_mat(&mut self, m: &MatRepr) {
        if let MatRepr::Vm { id, .. } = m {
            self.heap.release(*id);
        }
    }
}

/// Count the non-zeros of a stored dense matrix by streaming its tiles
/// (in-bounds cells only; boundary padding is ignored).
/// In-place dense lower Cholesky over a row-major `n x n` buffer: the
/// in-memory engines' reference factorization (zeroes the strict upper
/// triangle). The in-memory path has no tile schedule, so a pivot failure
/// reports panel 0 with the global pivot index.
fn dense_chol_inplace(a: &mut [f64], n: usize) -> ExecResult<()> {
    for j in 0..n {
        let mut d = a[j * n + j];
        for k in 0..j {
            d -= a[j * n + k] * a[j * n + k];
        }
        if !d.is_finite() || d <= 0.0 {
            return Err(ExecError::NotPositiveDefinite { tile: 0, pivot: j });
        }
        let d = d.sqrt();
        a[j * n + j] = d;
        for i in j + 1..n {
            let mut s = a[i * n + j];
            for k in 0..j {
                s -= a[i * n + k] * a[j * n + k];
            }
            a[i * n + j] = s / d;
        }
        for i in j + 1..n {
            a[j * n + i] = 0.0;
        }
    }
    Ok(())
}

/// Forward then backward substitution of `L · Lᵀ · X = B` in place over a
/// row-major `n x m` right-hand side.
fn dense_cholesky_substitute(l: &[f64], x: &mut [f64], n: usize, m: usize) {
    for r in 0..n {
        for k in 0..r {
            let lrk = l[r * n + k];
            for c in 0..m {
                x[r * m + c] -= lrk * x[k * m + c];
            }
        }
        for c in 0..m {
            x[r * m + c] /= l[r * n + r];
        }
    }
    for r in (0..n).rev() {
        for k in r + 1..n {
            let lkr = l[k * n + r];
            for c in 0..m {
                x[r * m + c] -= lkr * x[k * m + c];
            }
        }
        for c in 0..m {
            x[r * m + c] /= l[r * n + r];
        }
    }
}

fn count_dense_nnz(m: &DenseMatrix) -> ExecResult<u64> {
    let mut count = 0u64;
    m.for_each(|_, _, v| {
        if v != 0.0 {
            count += 1;
        }
    })?;
    Ok(count)
}
