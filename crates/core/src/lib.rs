//! # riot-core
//!
//! The core of the RIOT reproduction ("RIOT: I/O-Efficient Numerical
//! Computing without SQL", CIDR 2009): a deferred-evaluation expression
//! algebra, a database-style optimizer, a pipelined out-of-core executor,
//! and the four evaluation strategies the paper benchmarks against each
//! other.
//!
//! ## Architecture
//!
//! ```text
//!  user program (riot-rlang script, or the Session API directly)
//!      |
//!      v
//!  expr/graph  — hash-consed expression DAG; modifications are the
//!      |         functional `[]<-` operator, so everything stays deferrable
//!      v
//!  opt         — subscript pushdown (Fig. 2), MaskAssign->IfElse,
//!      |         constant folding, matrix-chain DP reordering (§5)
//!      v
//!  exec        — Volcano-style chunk pipeline (no intermediate
//!      |         materialization), index-nested-loop gather, and three
//!      |         out-of-core matmul kernels (naive / BNLJ / square-tiled)
//!      v
//!  riot-array / riot-storage — tiled arrays over a counted buffer pool
//! ```
//!
//! [`session::Session`] ties it together behind an R-like API and runs the
//! same program under any [`policy::EngineKind`]:
//!
//! * **PlainR** — eager per-op materialization on the `riot-vm` paging heap
//!   (the thrashing baseline);
//! * **Strawman** — every op reads and writes relational-style `(I,V)`
//!   tables (§4's strawman);
//! * **MatNamed** — deferred within a statement, materializing every named
//!   object (views without cross-statement deferral);
//! * **Riot** — fully deferred, optimized, pipelined, selective.

pub mod cost;
pub mod eval;
pub mod exec;
pub mod expr;
pub mod governance;
pub mod graph;
pub mod opt;
pub mod policy;
pub mod profile;
pub mod session;
pub mod shape;
pub mod sqlview;

pub use cost::{CostParams, MatMulStrategy};
pub use eval::{evaluate, MemSources, SourceData, Value};
pub use expr::{AggOp, BinOp, ExprError, Node, NodeId, SourceRef, UnOp};
pub use governance::{assert_no_leaks, leak_snapshot, LeakSnapshot};
pub use graph::ExprGraph;
pub use opt::{optimize, OptConfig, RewriteStats};
pub use policy::{EngineConfig, EngineKind};
pub use profile::{render_plan, ProfileNode, QueryProfile};
pub use riot_storage::{CancelToken, ResourceLimits};
pub use session::{RMat, RVec, Session};
