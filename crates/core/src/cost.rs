//! Analytic I/O cost model for out-of-core matrix multiplication.
//!
//! Figure 3 of the paper reports *calculated* I/O costs (in blocks) for
//! four strategies of evaluating `A %*% B %*% C`; this module reproduces
//! those calculations exactly, and the executor's measured I/O is
//! cross-validated against it in `tests/cost_model_validation.rs`.
//!
//! All sizes are in **elements**; costs are returned in **blocks**.
//! `B` = elements per block, `M` = elements of available memory.

/// Memory and block-size parameters of a cost computation.
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// Available memory `M`, in elements.
    pub mem_elems: f64,
    /// Block capacity `B`, in elements (paper: 1024).
    pub block_elems: f64,
}

impl CostParams {
    /// The paper's Figure 3 setting: memory in gigabytes of `f64`s and
    /// `B = 1024`.
    pub fn with_mem_gb(gb: f64) -> CostParams {
        CostParams {
            mem_elems: gb * 1024.0 * 1024.0 * 1024.0 / 8.0,
            block_elems: 1024.0,
        }
    }
}

/// The four strategies compared in Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatMulStrategy {
    /// RIOT-DB's hash-join + sort + aggregate plan over `(I, J, V)` tables.
    RiotDb,
    /// The block-nested-loop-join-inspired algorithm of §4 (row layout for
    /// the left operand, column for the right).
    BnljInspired,
    /// The Appendix-A square-tiled algorithm (√(M/3)-sided submatrices).
    SquareTiled,
}

/// I/O (blocks) of the naive triple loop of Example 2 when **both**
/// operands use R's default column layout: every access to `A` in row-major
/// order faults a block, giving the paper's "huge Θ(n1·n2·n3)".
pub fn naive_colmajor_io(n1: f64, n2: f64, n3: f64, p: CostParams) -> f64 {
    let b = p.block_elems;
    // Every A element access misses; B columns stream; T written once.
    n1 * n2 * n3 + n2 * n3 / b + n1 * n3 / b
}

/// I/O (blocks) of the same naive loop once `A` is given a row layout:
/// the row scan becomes sequential, reducing cost to Θ(n1·n2·n3 / B).
pub fn naive_rowlayout_io(n1: f64, n2: f64, n3: f64, p: CostParams) -> f64 {
    let b = p.block_elems;
    n1 * n2 * n3 / b + n2 * n3 / b + n1 * n3 / b
}

/// I/O (blocks) of the BNLJ-inspired algorithm: read as many rows of `A`
/// as fit (leaving room for the matching rows of `T` and a block of `B`),
/// scanning `B` once per chunk. Θ(n1·n2·n3·(n2+n3) / (B·M)).
pub fn bnlj_io(n1: f64, n2: f64, n3: f64, p: CostParams) -> f64 {
    let b = p.block_elems;
    // Memory holds m rows of A (m*n2) plus m rows of T (m*n3).
    let m_rows = (p.mem_elems / (n2 + n3)).floor().max(1.0);
    let passes = (n1 / m_rows).ceil();
    n1 * n2 / b + passes * n2 * n3 / b + n1 * n3 / b
}

/// I/O (blocks) of the Appendix-A square-submatrix schedule with
/// `p = √(M/3)`: `(2·p²/B · n2/p + p²/B) · (n1·n3/p²)`, i.e.
/// `2√3·n1·n2·n3/(B·√M) + n1·n3/B` — matching the lower bound.
pub fn square_tiled_io(n1: f64, n2: f64, n3: f64, p: CostParams) -> f64 {
    let b = p.block_elems;
    let side = (p.mem_elems / 3.0).sqrt();
    // If everything fits, cost degenerates to scanning inputs + output.
    if n1 <= side && n2 <= side && n3 <= side {
        return (n1 * n2 + n2 * n3 + n1 * n3) / b;
    }
    2.0 * n1 * n2 * n3 / (b * side) + n1 * n3 / b
}

/// I/O (blocks) of RIOT-DB's relational plan: hash join `A ⋈ B` on
/// `A.J = B.I`, then external sort of the n1·n2·n3 joined tuples by
/// `(A.I, B.J)` with aggregation on the final merge.
///
/// Following the paper's footnote 5, index-column storage overhead is
/// excluded (tuples are costed at one value each), which "has no effect on
/// the relative ordering of performance".
pub fn riotdb_matmul_io(n1: f64, n2: f64, n3: f64, p: CostParams) -> f64 {
    let b = p.block_elems;
    let a_blocks = n1 * n2 / b;
    let b_blocks = n2 * n3 / b;
    // Hash join: in-memory if the build side fits, else GRACE (partition
    // both inputs to disk, read back).
    let build = a_blocks.min(b_blocks);
    let join_io = if build * b <= p.mem_elems {
        a_blocks + b_blocks
    } else {
        3.0 * (a_blocks + b_blocks)
    };
    // Sort n1*n2*n3 tuples: run generation writes them, each merge pass
    // reads + writes, the final merge aggregates down to n1*n3.
    let tuples = n1 * n2 * n3;
    let sort_blocks = tuples / b;
    let runs = (tuples / p.mem_elems).ceil().max(1.0);
    let fan_in = (p.mem_elems / b - 1.0).max(2.0);
    let passes = if runs <= 1.0 {
        1.0
    } else {
        runs.log(fan_in).ceil().max(1.0)
    };
    let sort_io = 2.0 * sort_blocks * passes;
    join_io + sort_io + n1 * n3 / b
}

// ---- sparse-format costs (riot-sparse subsystem) -----------------------

/// Expected fraction of tiles holding at least one non-zero when elements
/// are non-zero independently with probability `density` and a tile holds
/// `tile_elems` elements. This is the statistic that converts the
/// catalog's nnz into an I/O estimate: a sparse scan reads only occupied
/// pages.
pub fn occupied_fraction(density: f64, tile_elems: f64) -> f64 {
    (1.0 - (1.0 - density.clamp(0.0, 1.0)).powf(tile_elems)).clamp(0.0, 1.0)
}

/// I/O (blocks) of out-of-core sparse matrix-vector multiply `y = A x`
/// for an `n1 x n2` matrix at `density`: directory + occupied data pages
/// + one streaming read of `x` per tile-row + one write of `y`.
pub fn spmv_io(n1: f64, n2: f64, density: f64, p: CostParams) -> f64 {
    let b = p.block_elems;
    let tiles = (n1 * n2 / b).ceil();
    let dir = (2.0 * tiles / b).ceil().max(1.0);
    let tile_rows = (n1 / b.sqrt()).ceil().max(1.0);
    dir + tiles * occupied_fraction(density, b) + tile_rows * (n2 / b).ceil() + n1 / b
}

/// I/O (blocks) of the dense matrix-vector multiply the sparse kernel is
/// compared against: every tile, plus `x` per tile-row, plus `y`.
pub fn dmv_io(n1: f64, n2: f64, p: CostParams) -> f64 {
    let b = p.block_elems;
    let tile_rows = (n1 / b.sqrt()).ceil().max(1.0);
    (n1 * n2 / b).ceil() + tile_rows * (n2 / b).ceil() + n1 / b
}

/// I/O (blocks) of sparse `A (n1 x n2, density)` times dense
/// `B (n2 x n3)` with dense accumulator tiles: occupied pages of `A`,
/// plus — for each occupied `A` tile — the matching block-row of `B`,
/// plus the dense output.
pub fn spmdm_io(n1: f64, n2: f64, n3: f64, density: f64, p: CostParams) -> f64 {
    let b = p.block_elems;
    let side = b.sqrt();
    let occ = (n1 * n2 / b).ceil() * occupied_fraction(density, b);
    occ + occ * (side * n3 / b).ceil() + n1 * n3 / b
}

/// Default density threshold for the optimizer's sparse-vs-dense kernel
/// choice. Below it the sparse kernels win on both skipped pages and
/// skipped multiplications; above it page occupancy saturates (see
/// [`occupied_fraction`]) and the dense kernels' sequential scans and
/// tighter inner loops win.
pub const SPARSE_DENSITY_THRESHOLD: f64 = 0.25;

/// I/O (blocks) for multiplying an `n1 x n2` by an `n2 x n3` matrix under
/// `strategy`.
pub fn matmul_io(strategy: MatMulStrategy, n1: f64, n2: f64, n3: f64, p: CostParams) -> f64 {
    match strategy {
        MatMulStrategy::RiotDb => riotdb_matmul_io(n1, n2, n3, p),
        MatMulStrategy::BnljInspired => bnlj_io(n1, n2, n3, p),
        MatMulStrategy::SquareTiled => square_tiled_io(n1, n2, n3, p),
    }
}

/// Number of scalar multiplications for a single product.
pub fn matmul_flops(n1: f64, n2: f64, n3: f64) -> f64 {
    n1 * n2 * n3
}

/// A parenthesization of a matrix chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainTree {
    /// The `i`-th input matrix (0-based).
    Leaf(usize),
    /// Product of two subtrees.
    Mul(Box<ChainTree>, Box<ChainTree>),
}

impl ChainTree {
    /// The left-deep tree `((A1 A2) A3) ...` — program order, what R does.
    pub fn in_order(k: usize) -> ChainTree {
        assert!(k >= 1);
        let mut t = ChainTree::Leaf(0);
        for i in 1..k {
            t = ChainTree::Mul(Box::new(t), Box::new(ChainTree::Leaf(i)));
        }
        t
    }

    /// Render with explicit parentheses, e.g. `((A1 A2) A3)`.
    pub fn render(&self) -> String {
        match self {
            ChainTree::Leaf(i) => format!("A{}", i + 1),
            ChainTree::Mul(l, r) => format!("({} {})", l.render(), r.render()),
        }
    }

    /// `(rows, cols)` of the subtree result given chain dimensions
    /// `dims[i] x dims[i+1]` for matrix `i`.
    pub fn dims(&self, dims: &[usize]) -> (usize, usize) {
        match self {
            ChainTree::Leaf(i) => (dims[*i], dims[*i + 1]),
            ChainTree::Mul(l, r) => (l.dims(dims).0, r.dims(dims).1),
        }
    }

    /// Total scalar multiplications to evaluate the tree.
    pub fn flops(&self, dims: &[usize]) -> f64 {
        match self {
            ChainTree::Leaf(_) => 0.0,
            ChainTree::Mul(l, r) => {
                let (n1, n2) = l.dims(dims);
                let (_, n3) = r.dims(dims);
                l.flops(dims) + r.flops(dims) + matmul_flops(n1 as f64, n2 as f64, n3 as f64)
            }
        }
    }

    /// Total I/O (blocks) to evaluate the tree, charging each
    /// multiplication at `strategy` (intermediates are materialized, as in
    /// Appendix B's optimal schedule).
    pub fn io(&self, dims: &[usize], strategy: MatMulStrategy, p: CostParams) -> f64 {
        match self {
            ChainTree::Leaf(_) => 0.0,
            ChainTree::Mul(l, r) => {
                let (n1, n2) = l.dims(dims);
                let (_, n3) = r.dims(dims);
                l.io(dims, strategy, p)
                    + r.io(dims, strategy, p)
                    + matmul_io(strategy, n1 as f64, n2 as f64, n3 as f64, p)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p2gb() -> CostParams {
        CostParams::with_mem_gb(2.0)
    }

    #[test]
    fn mem_gb_conversion() {
        let p = p2gb();
        assert!((p.mem_elems - 268_435_456.0).abs() < 1.0);
        assert_eq!(p.block_elems, 1024.0);
    }

    #[test]
    fn strategy_ordering_matches_figure_3a() {
        // n = 100000, s = 2, M = 2 GB: the paper's progression
        // RIOT-DB >> BNLJ-Inspired >> Square must hold for the first
        // multiplication A(n x n/s) * B(n/s x n).
        let p = p2gb();
        let (n, s) = (100_000.0, 2.0);
        let riotdb = riotdb_matmul_io(n, n / s, n, p);
        let bnlj = bnlj_io(n, n / s, n, p);
        let square = square_tiled_io(n, n / s, n, p);
        assert!(riotdb > 100.0 * bnlj, "riotdb={riotdb:.3e} bnlj={bnlj:.3e}");
        assert!(bnlj > 2.0 * square, "bnlj={bnlj:.3e} square={square:.3e}");
        // Orders of magnitude as in the figure (~1e12, ~1e8-9, ~1e8).
        assert!(riotdb > 1e11 && riotdb < 1e14);
        assert!(square > 1e7 && square < 1e9);
    }

    #[test]
    fn square_matches_lower_bound_formula() {
        let p = p2gb();
        let (n1, n2, n3) = (100_000.0, 50_000.0, 100_000.0);
        let want = 2.0 * 3.0f64.sqrt() * n1 * n2 * n3 / (p.block_elems * p.mem_elems.sqrt())
            + n1 * n3 / p.block_elems;
        let got = square_tiled_io(n1, n2, n3, p);
        assert!((got - want).abs() / want < 1e-12);
    }

    #[test]
    fn square_degenerates_when_in_memory() {
        let p = CostParams {
            mem_elems: 1e6,
            block_elems: 1024.0,
        };
        // 100x100 matrices fit in sqrt(1e6/3) ~ 577 square: scan-only cost.
        let got = square_tiled_io(100.0, 100.0, 100.0, p);
        assert!((got - 3.0 * 10_000.0 / 1024.0).abs() < 1e-9);
    }

    #[test]
    fn more_memory_reduces_io() {
        let p2 = CostParams::with_mem_gb(2.0);
        let p4 = CostParams::with_mem_gb(4.0);
        let (n1, n2, n3) = (100_000.0, 50_000.0, 100_000.0);
        for strat in [MatMulStrategy::BnljInspired, MatMulStrategy::SquareTiled] {
            assert!(
                matmul_io(strat, n1, n2, n3, p4) < matmul_io(strat, n1, n2, n3, p2),
                "{strat:?}"
            );
        }
        // RIOT-DB's cost is dominated by integral sort passes, which may
        // not change between 2 GB and 4 GB — it must at least not grow.
        assert!(
            matmul_io(MatMulStrategy::RiotDb, n1, n2, n3, p4)
                <= matmul_io(MatMulStrategy::RiotDb, n1, n2, n3, p2)
        );
    }

    #[test]
    fn naive_col_vs_row_layout() {
        let p = p2gb();
        let (n1, n2, n3) = (10_000.0, 10_000.0, 10_000.0);
        let col = naive_colmajor_io(n1, n2, n3, p);
        let row = naive_rowlayout_io(n1, n2, n3, p);
        // Row layout wins by ~B.
        assert!(col / row > 500.0);
    }

    #[test]
    fn occupied_fraction_properties() {
        // Monotone in density, 0 at 0, saturating toward 1.
        assert_eq!(occupied_fraction(0.0, 1024.0), 0.0);
        assert!(occupied_fraction(0.001, 1024.0) < occupied_fraction(0.01, 1024.0));
        // At B = 1024 occupancy saturates well below the kernel threshold:
        // the analytic justification for SPARSE_DENSITY_THRESHOLD.
        assert!(occupied_fraction(0.01, 1024.0) > 0.99);
        // Smaller tiles keep sparsity visible much longer.
        assert!(occupied_fraction(0.01, 64.0) < 0.5);
        assert!(occupied_fraction(1.0, 64.0) <= 1.0);
    }

    #[test]
    fn spmv_cheaper_than_dense_below_saturation() {
        let p = CostParams {
            mem_elems: 1e6,
            block_elems: 64.0,
        };
        let (n1, n2) = (4096.0, 4096.0);
        for d in [0.0001, 0.001, 0.01] {
            assert!(
                spmv_io(n1, n2, d, p) < dmv_io(n1, n2, p),
                "sparse must win at density {d}"
            );
        }
        // Saturated: sparse approaches (and never beats by much) dense +
        // the directory overhead.
        let sat = spmv_io(n1, n2, 0.5, p);
        let dense = dmv_io(n1, n2, p);
        assert!(sat >= dense && sat < 1.1 * dense);
    }

    #[test]
    fn spmdm_io_tracks_occupancy() {
        let p = CostParams {
            mem_elems: 1e6,
            block_elems: 1024.0,
        };
        let (n1, n2, n3) = (10_000.0, 10_000.0, 10_000.0);
        let lo = spmdm_io(n1, n2, n3, 0.0001, p);
        let hi = spmdm_io(n1, n2, n3, 0.5, p);
        assert!(lo < hi);
        // Fully occupied, the sparse plan degenerates to reading every
        // page of A plus a block-row of B per page plus the output.
        let occ_all = n1 * n2 / p.block_elems;
        assert!(hi >= occ_all);
    }

    #[test]
    fn in_order_tree_structure() {
        let t = ChainTree::in_order(3);
        assert_eq!(t.render(), "((A1 A2) A3)");
        assert_eq!(t.dims(&[2, 3, 4, 5]), (2, 5));
    }

    #[test]
    fn chain_flops_example_2() {
        // A(10x20) B(20x30) C(30x40):
        // (AB)C = 10*20*30 + 10*30*40 = 18000
        // A(BC) = 20*30*40 + 10*20*40 = 32000
        let dims = [10, 20, 30, 40];
        let left = ChainTree::in_order(3);
        let right = ChainTree::Mul(
            Box::new(ChainTree::Leaf(0)),
            Box::new(ChainTree::Mul(
                Box::new(ChainTree::Leaf(1)),
                Box::new(ChainTree::Leaf(2)),
            )),
        );
        assert_eq!(left.flops(&dims), 18_000.0);
        assert_eq!(right.flops(&dims), 32_000.0);
    }

    #[test]
    fn skewed_chain_prefers_right_association() {
        // The paper's skew setup: A(n x n/s), B(n/s x n), C(n x n) makes
        // A(BC) cheaper than (AB)C in both flops and I/O.
        let n = 100_000;
        let s = 4;
        let dims = [n, n / s, n, n];
        let left = ChainTree::in_order(3);
        let right = ChainTree::Mul(
            Box::new(ChainTree::Leaf(0)),
            Box::new(ChainTree::Mul(
                Box::new(ChainTree::Leaf(1)),
                Box::new(ChainTree::Leaf(2)),
            )),
        );
        assert!(right.flops(&dims) < left.flops(&dims));
        let p = p2gb();
        assert!(
            right.io(&dims, MatMulStrategy::SquareTiled, p)
                < left.io(&dims, MatMulStrategy::SquareTiled, p)
        );
    }
}
