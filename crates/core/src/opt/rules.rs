//! DAG rewrite rules: RIOT's database-style optimizations (§5).
//!
//! The flagship rule is **subscript pushdown** — Figure 2's transformation.
//! For `b <- a^2; b[b>100] <- 100; print(b[1:10])` the selection of the
//! first 10 elements is pushed below the functional update `[]<-` and the
//! squaring, all the way onto `a`, so only 10 elements are ever computed.
//!
//! Rules implemented:
//!
//! * `MaskAssign(d, m, v)  ->  IfElse(m, v, d)` — a masked functional
//!   update *is* an elementwise conditional, which unlocks pushdown
//!   through it.
//! * `Gather(Map(f, x), i)      -> Map(f, Gather(x, i))`
//! * `Gather(Zip(op, a, b), i)  -> Zip(op, push(a), push(b))` where
//!   recycled operands get their indices re-mapped through `((i-1) %% len)+1`
//! * `Gather(IfElse(c,y,n), i)  -> IfElse(push(c), push(y), push(n))`
//! * `Gather(Range(s), i)       -> i + (s - 1)` — indexing a sequence is
//!   arithmetic
//! * `Gather(Gather(x, j), i)   -> Gather(x, Gather(j, i))`
//! * `Gather(x, 1:len(x))       -> x`
//! * constant folding of scalar subtrees, `x^2 -> square(x)`,
//!   `x*1 -> x`, `x+0 -> x`, `0-x -> -x`, double negation, double
//!   transpose, and scalar-condition `IfElse` selection.
//!
//! Every rule is semantics-preserving; `tests/prop_optimizer.rs` checks
//! rewritten DAGs against the reference evaluator on random programs.

use std::collections::HashMap;

use crate::expr::{BinOp, Node, NodeId, UnOp};
use crate::graph::ExprGraph;
use crate::shape::Shape;

/// Which rule families to apply (ablation switches for the benches).
#[derive(Debug, Clone, Copy)]
pub struct OptConfig {
    /// Enable subscript pushdown (Figure 2).
    pub pushdown: bool,
    /// Enable constant folding and algebraic simplification.
    pub fold: bool,
    /// Enable matrix-chain reordering (applied by [`super::optimize`]).
    pub reorder_chains: bool,
    /// Density at or above which a sparse `MatMul` operand is densified so
    /// the dense kernels run instead (the sparse-vs-dense physical plan
    /// choice, estimated from the catalog's nnz). `0.0` always densifies;
    /// anything above `1.0` always keeps the sparse kernels.
    pub sparse_threshold: f64,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            pushdown: true,
            fold: true,
            reorder_chains: true,
            sparse_threshold: crate::cost::SPARSE_DENSITY_THRESHOLD,
        }
    }
}

/// Counters describing what the optimizer did (reported by the Figure 2
/// harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// `MaskAssign -> IfElse` conversions.
    pub mask_to_ifelse: u64,
    /// Subscripts pushed through an operator.
    pub gathers_pushed: u64,
    /// Constants folded / identities simplified.
    pub folds: u64,
    /// Matrix chains reordered.
    pub chains_reordered: u64,
    /// `MatMul` operands kept sparse (density below the threshold).
    pub sparse_kernels: u64,
    /// `MatMul` operands densified (density at or above the threshold).
    pub sparse_densified: u64,
    /// Transposes of sparse-valued inputs planned on the native sparse
    /// kernel (density below the threshold): `Transpose -> SpTranspose`.
    pub sparse_transposes: u64,
    /// Transposes of sparse-valued inputs densified before transposing
    /// (density at or above the threshold).
    pub transpose_densified: u64,
    /// `solve(crossprod(x), ...)` patterns recognized as normal-equations
    /// solves: the Gram-matrix coefficient certifies positive definiteness
    /// structurally, so the plan commits to the Cholesky kernel (the
    /// inverse is never materialized).
    pub normal_eq_solves: u64,
}

/// Rewrite the DAG rooted at `root`, returning the new root.
pub fn rewrite(
    g: &mut ExprGraph,
    root: NodeId,
    cfg: &OptConfig,
    stats: &mut RewriteStats,
) -> NodeId {
    let mut memo: HashMap<NodeId, NodeId> = HashMap::new();
    rw(g, root, cfg, stats, &mut memo)
}

fn rw(
    g: &mut ExprGraph,
    id: NodeId,
    cfg: &OptConfig,
    stats: &mut RewriteStats,
    memo: &mut HashMap<NodeId, NodeId>,
) -> NodeId {
    if let Some(&r) = memo.get(&id) {
        return r;
    }
    let node = g.node(id).clone();
    let out = match node {
        // Leaves rewrite to themselves.
        Node::VecSource { .. }
        | Node::MatSource { .. }
        | Node::SpMatSource { .. }
        | Node::Literal(_)
        | Node::Scalar(_)
        | Node::Range { .. } => id,

        Node::Densify { input } => {
            let input = rw(g, input, cfg, stats, memo);
            // as.dense(as.sparse(x)) is x: the input of a Sparsify is
            // dense-valued by construction.
            if cfg.fold {
                if let Node::Sparsify { input: inner } = *g.node(input) {
                    stats.folds += 1;
                    memo.insert(id, inner);
                    return inner;
                }
            }
            g.densify(input).expect("shapes preserved")
        }
        Node::Sparsify { input } => {
            let input = rw(g, input, cfg, stats, memo);
            // as.sparse(as.dense(x)) is x: the input of a Densify is
            // sparse-valued by construction.
            if cfg.fold {
                if let Node::Densify { input: inner } = *g.node(input) {
                    stats.folds += 1;
                    memo.insert(id, inner);
                    return inner;
                }
            }
            g.sparsify(input).expect("shapes preserved")
        }

        Node::Map { op, input } => {
            let input = rw(g, input, cfg, stats, memo);
            build_map(g, op, input, cfg, stats)
        }
        Node::Zip { op, lhs, rhs } => {
            let lhs = rw(g, lhs, cfg, stats, memo);
            let rhs = rw(g, rhs, cfg, stats, memo);
            build_zip(g, op, lhs, rhs, cfg, stats)
        }
        Node::IfElse { cond, yes, no } => {
            let cond = rw(g, cond, cfg, stats, memo);
            let yes = rw(g, yes, cfg, stats, memo);
            let no = rw(g, no, cfg, stats, memo);
            build_if_else(g, cond, yes, no, cfg, stats)
        }
        Node::Gather { data, index } => {
            let data = rw(g, data, cfg, stats, memo);
            let index = rw(g, index, cfg, stats, memo);
            if cfg.pushdown {
                build_gather(g, data, index, cfg, stats)
            } else {
                g.gather(data, index).expect("shapes preserved")
            }
        }
        Node::SubAssign { data, index, value } => {
            let data = rw(g, data, cfg, stats, memo);
            let index = rw(g, index, cfg, stats, memo);
            let value = rw(g, value, cfg, stats, memo);
            g.sub_assign(data, index, value).expect("shapes preserved")
        }
        Node::MaskAssign { data, mask, value } => {
            let data = rw(g, data, cfg, stats, memo);
            let mask = rw(g, mask, cfg, stats, memo);
            let value = rw(g, value, cfg, stats, memo);
            // A masked functional update IS an elementwise conditional;
            // rewriting it as one turns a blocking modification into a
            // deferrable, pushdown-transparent operator (Figure 2).
            stats.mask_to_ifelse += 1;
            build_if_else(g, mask, value, data, cfg, stats)
        }
        Node::MatMul { lhs, rhs } => {
            let lhs = rw(g, lhs, cfg, stats, memo);
            let rhs = rw(g, rhs, cfg, stats, memo);
            // Physical-plan choice for sparse operands: keep the sparse
            // kernel only below the density threshold, estimated from the
            // nnz statistic the catalog carries in the source node.
            let lhs = choose_repr(g, lhs, cfg, stats);
            let rhs = choose_repr(g, rhs, cfg, stats);
            g.matmul(lhs, rhs).expect("shapes preserved")
        }
        Node::Transpose { input } => {
            let input = rw(g, input, cfg, stats, memo);
            if cfg.fold {
                // t(t(x)) is x whichever kernel either transpose was
                // planned on — representation does not change the algebra.
                if let Node::Transpose { input: inner } | Node::SpTranspose { input: inner } =
                    *g.node(input)
                {
                    stats.folds += 1;
                    memo.insert(id, inner);
                    return inner;
                }
            }
            build_transpose(g, input, cfg, stats)
        }
        Node::SpTranspose { input } => {
            let input = rw(g, input, cfg, stats, memo);
            if cfg.fold {
                if let Node::Transpose { input: inner } | Node::SpTranspose { input: inner } =
                    *g.node(input)
                {
                    stats.folds += 1;
                    memo.insert(id, inner);
                    return inner;
                }
            }
            // Re-run the physical choice: the rewritten input may have
            // changed representation.
            build_transpose(g, input, cfg, stats)
        }
        Node::Agg { op, input } => {
            let input = rw(g, input, cfg, stats, memo);
            g.agg(op, input)
        }
        Node::Chol { input } => {
            let input = rw(g, input, cfg, stats, memo);
            g.chol(input).expect("shapes preserved")
        }
        Node::Solve { lhs, rhs } => {
            let lhs = rw(g, lhs, cfg, stats, memo);
            let rhs = rw(g, rhs, cfg, stats, memo);
            // Normal-equations detection: a coefficient of the form
            // t(x) %*% x is a Gram matrix — positive (semi-)definite by
            // construction — so the plan is certified for the Cholesky
            // kernel without materializing an inverse. Hash-consing has
            // already shared the t(x) between `crossprod(x)` and
            // `crossprod(x, y)`, so the rewritten plan computes the
            // transpose once.
            if gram_operand(g, lhs).is_some() {
                stats.normal_eq_solves += 1;
            }
            g.solve(lhs, rhs).expect("shapes preserved")
        }
    };
    memo.insert(id, out);
    out
}

/// If `id` is a Gram matrix `t(x) %*% x` (either transpose kernel, seen
/// through representation conversions), return `x`.
fn gram_operand(g: &ExprGraph, id: NodeId) -> Option<NodeId> {
    // Representation conversions preserve the algebraic value.
    let strip = |g: &ExprGraph, mut id: NodeId| loop {
        match *g.node(id) {
            Node::Densify { input } | Node::Sparsify { input } => id = input,
            _ => return id,
        }
    };
    let Node::MatMul { lhs, rhs } = *g.node(strip(g, id)) else {
        return None;
    };
    match *g.node(strip(g, lhs)) {
        Node::Transpose { input } | Node::SpTranspose { input }
            if strip(g, input) == strip(g, rhs) =>
        {
            Some(input)
        }
        _ => None,
    }
}

/// Statistics of a node the optimizer knows to be sparse-valued, from the
/// catalog-carried nnz: `(rows, cols, nnz)`. Sees through
/// [`Node::SpTranspose`] (same non-zeros, swapped dimensions), so density
/// decisions push through planned transposes.
fn sparse_stats(g: &ExprGraph, id: NodeId) -> Option<(usize, usize, u64)> {
    match *g.node(id) {
        Node::SpMatSource {
            rows, cols, nnz, ..
        } => Some((rows, cols, nnz)),
        Node::SpTranspose { input } => sparse_stats(g, input).map(|(r, c, n)| (c, r, n)),
        _ => None,
    }
}

/// Decide a `MatMul` operand's physical representation: a sparse-valued
/// operand (source or planned transpose) whose density meets
/// `cfg.sparse_threshold` is densified (the dense kernels' sequential
/// scans win once page occupancy saturates); below the threshold it stays
/// sparse and the executor dispatches the sparse kernels — on *either*
/// side of the product (`spmdm` for sparse x dense, `dmspm` for dense x
/// sparse, `spmm` for sparse x sparse).
fn choose_repr(g: &mut ExprGraph, id: NodeId, cfg: &OptConfig, stats: &mut RewriteStats) -> NodeId {
    if let Some((rows, cols, nnz)) = sparse_stats(g, id) {
        let density = nnz as f64 / (rows * cols) as f64;
        if density >= cfg.sparse_threshold {
            stats.sparse_densified += 1;
            return g.densify(id).expect("sparse operands are matrices");
        }
        stats.sparse_kernels += 1;
    }
    id
}

/// Build a transpose applying the physical-representation choice: a
/// sparse-valued input below the density threshold transposes on the
/// native sparse kernel ([`Node::SpTranspose`], result stays sparse); at
/// or above it, the input densifies first. Anything whose representation
/// the optimizer cannot see keeps the representation-generic
/// [`Node::Transpose`].
fn build_transpose(
    g: &mut ExprGraph,
    input: NodeId,
    cfg: &OptConfig,
    stats: &mut RewriteStats,
) -> NodeId {
    if let Some((rows, cols, nnz)) = sparse_stats(g, input) {
        let density = nnz as f64 / (rows * cols) as f64;
        if density < cfg.sparse_threshold {
            stats.sparse_transposes += 1;
            return g.sp_transpose(input).expect("shapes preserved");
        }
        stats.transpose_densified += 1;
        let dense = g.densify(input).expect("sparse operands are matrices");
        return g.transpose(dense).expect("shapes preserved");
    }
    g.transpose(input).expect("shapes preserved")
}

/// Build `Map(op, input)` applying local simplifications.
fn build_map(
    g: &mut ExprGraph,
    op: UnOp,
    input: NodeId,
    cfg: &OptConfig,
    stats: &mut RewriteStats,
) -> NodeId {
    if cfg.fold {
        // Constant folding.
        if let Node::Scalar(c) = *g.node(input) {
            stats.folds += 1;
            return g.scalar(op.apply(c));
        }
        // Double negation.
        if op == UnOp::Neg {
            if let Node::Map {
                op: UnOp::Neg,
                input: inner,
            } = *g.node(input)
            {
                stats.folds += 1;
                return inner;
            }
        }
    }
    g.map(op, input)
}

/// Build `Zip(op, lhs, rhs)` applying local simplifications.
fn build_zip(
    g: &mut ExprGraph,
    op: BinOp,
    lhs: NodeId,
    rhs: NodeId,
    cfg: &OptConfig,
    stats: &mut RewriteStats,
) -> NodeId {
    if cfg.fold {
        if let (Node::Scalar(a), Node::Scalar(b)) = (g.node(lhs), g.node(rhs)) {
            let v = op.apply(*a, *b);
            stats.folds += 1;
            return g.scalar(v);
        }
        if let Node::Scalar(c) = *g.node(rhs) {
            match (op, c) {
                // x ^ 2 -> square(x): the strength reduction that lets the
                // pipeline avoid powf.
                (BinOp::Pow, c) if c == 2.0 => {
                    stats.folds += 1;
                    return build_map(g, UnOp::Square, lhs, cfg, stats);
                }
                (BinOp::Pow, c) if c == 1.0 => {
                    stats.folds += 1;
                    return lhs;
                }
                (BinOp::Mul, c) if c == 1.0 => {
                    stats.folds += 1;
                    return lhs;
                }
                (BinOp::Div, c) if c == 1.0 => {
                    stats.folds += 1;
                    return lhs;
                }
                (BinOp::Add, c) if c == 0.0 => {
                    stats.folds += 1;
                    return lhs;
                }
                (BinOp::Sub, c) if c == 0.0 => {
                    stats.folds += 1;
                    return lhs;
                }
                _ => {}
            }
        }
        if let Node::Scalar(c) = *g.node(lhs) {
            match (op, c) {
                (BinOp::Mul, c) if c == 1.0 => {
                    stats.folds += 1;
                    return rhs;
                }
                (BinOp::Add, c) if c == 0.0 => {
                    stats.folds += 1;
                    return rhs;
                }
                (BinOp::Sub, c) if c == 0.0 => {
                    stats.folds += 1;
                    return build_map(g, UnOp::Neg, rhs, cfg, stats);
                }
                _ => {}
            }
        }
    }
    g.zip(op, lhs, rhs).expect("shapes preserved")
}

/// Build `IfElse(cond, yes, no)` applying scalar-condition selection.
fn build_if_else(
    g: &mut ExprGraph,
    cond: NodeId,
    yes: NodeId,
    no: NodeId,
    cfg: &OptConfig,
    stats: &mut RewriteStats,
) -> NodeId {
    if cfg.fold {
        if let Node::Scalar(c) = *g.node(cond) {
            let chosen = if c != 0.0 { yes } else { no };
            // Only select the branch if it has the full result shape
            // (otherwise the conditional's broadcast would be lost).
            let full = g
                .shape(cond)
                .broadcast(&g.shape(yes))
                .broadcast(&g.shape(no));
            if g.shape(chosen) == full {
                stats.folds += 1;
                return chosen;
            }
        }
    }
    g.if_else(cond, yes, no).expect("shapes preserved")
}

/// Build `Gather(data, index)` with pushdown: the heart of Figure 2.
fn build_gather(
    g: &mut ExprGraph,
    data: NodeId,
    index: NodeId,
    cfg: &OptConfig,
    stats: &mut RewriteStats,
) -> NodeId {
    let data_len = match g.shape(data) {
        Shape::Vector(n) => n,
        _ => {
            return g.gather(data, index).expect("shapes preserved");
        }
    };
    // Identity: x[1:len(x)] is x.
    if cfg.fold {
        if let Node::Range { start: 1, len } = *g.node(index) {
            if len == data_len {
                stats.folds += 1;
                return data;
            }
        }
    }
    match g.node(data).clone() {
        Node::Map { op, input } => {
            stats.gathers_pushed += 1;
            let pushed = push_operand(g, input, index, data_len, cfg, stats);
            build_map(g, op, pushed, cfg, stats)
        }
        Node::Zip { op, lhs, rhs } => {
            stats.gathers_pushed += 1;
            let pl = push_operand(g, lhs, index, data_len, cfg, stats);
            let pr = push_operand(g, rhs, index, data_len, cfg, stats);
            build_zip(g, op, pl, pr, cfg, stats)
        }
        Node::IfElse { cond, yes, no } => {
            stats.gathers_pushed += 1;
            let pc = push_operand(g, cond, index, data_len, cfg, stats);
            let py = push_operand(g, yes, index, data_len, cfg, stats);
            let pn = push_operand(g, no, index, data_len, cfg, stats);
            build_if_else(g, pc, py, pn, cfg, stats)
        }
        Node::Range { start, .. } => {
            // range[i] = start + i - 1: indexing a sequence is arithmetic.
            stats.gathers_pushed += 1;
            let offset = g.scalar(start as f64 - 1.0);
            build_zip(g, BinOp::Add, index, offset, cfg, stats)
        }
        Node::Gather {
            data: inner,
            index: j,
        } => {
            // x[j][i] = x[j[i]].
            stats.gathers_pushed += 1;
            let ji = build_gather(g, j, index, cfg, stats);
            build_gather(g, inner, ji, cfg, stats)
        }
        // Sources, literals, SubAssign and matrix ops: stop here; the
        // executor probes them directly (or materializes SubAssign).
        _ => g.gather(data, index).expect("shapes preserved"),
    }
}

/// Push `index` into operand `n` of an elementwise node whose output length
/// is `out_len`, re-mapping indices for recycled (shorter) operands.
fn push_operand(
    g: &mut ExprGraph,
    n: NodeId,
    index: NodeId,
    out_len: usize,
    cfg: &OptConfig,
    stats: &mut RewriteStats,
) -> NodeId {
    match g.shape(n) {
        Shape::Scalar => n,
        Shape::Vector(l) if l == out_len => build_gather(g, n, index, cfg, stats),
        Shape::Vector(l) => {
            // Recycled operand: position p of the output reads element
            // ((p-1) mod l) + 1 of n.
            debug_assert!(l > 0 && out_len % l == 0, "recycling invariant");
            let one = g.scalar(1.0);
            let len = g.scalar(l as f64);
            let zero_based = build_zip(g, BinOp::Sub, index, one, cfg, stats);
            let wrapped = build_zip(g, BinOp::Mod, zero_based, len, cfg, stats);
            let remapped = build_zip(g, BinOp::Add, wrapped, one, cfg, stats);
            build_gather(g, n, remapped, cfg, stats)
        }
        _ => build_gather(g, n, index, cfg, stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate, MemSources, Value};
    use crate::expr::SourceRef;

    fn no_stats() -> RewriteStats {
        RewriteStats::default()
    }

    #[test]
    fn figure_2_pushdown_shrinks_the_dag() {
        // b <- a^2; b[b>100] <- 100; b[1:10] with a of length 1000.
        let mut g = ExprGraph::new();
        let a = g.vec_source(SourceRef(0), 1000);
        let two = g.scalar(2.0);
        let b = g.zip(BinOp::Pow, a, two).unwrap();
        let hundred = g.scalar(100.0);
        let mask = g.zip(BinOp::Gt, b, hundred).unwrap();
        let b2 = g.mask_assign(b, mask, hundred).unwrap();
        let idx = g.range(1, 10);
        let z = g.gather(b2, idx).unwrap();

        let mut stats = no_stats();
        let opt = rewrite(&mut g, z, &OptConfig::default(), &mut stats);

        assert!(stats.mask_to_ifelse >= 1);
        assert!(stats.gathers_pushed >= 2);
        // After pushdown every non-source node in the optimized DAG is
        // 10 elements or scalar — nothing n-sized is computed.
        for id in g.reachable(&[opt]) {
            match g.node(id) {
                Node::VecSource { .. } => {}
                _ => {
                    let len = g.shape(id).len();
                    assert!(len <= 10, "node {} still {}-sized", g.render(id), len);
                }
            }
        }
    }

    #[test]
    fn figure_2_pushdown_preserves_semantics() {
        let mut g = ExprGraph::new();
        let mut src = MemSources::new();
        let a_data: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        let a_ref = src.add_vector(a_data);
        let a = g.vec_source(a_ref, 50);
        let two = g.scalar(2.0);
        let b = g.zip(BinOp::Pow, a, two).unwrap();
        let hundred = g.scalar(100.0);
        let mask = g.zip(BinOp::Gt, b, hundred).unwrap();
        let b2 = g.mask_assign(b, mask, hundred).unwrap();
        let idx = g.range(1, 10);
        let z = g.gather(b2, idx).unwrap();

        let want = evaluate(&g, z, &src).unwrap();
        let mut stats = no_stats();
        let opt = rewrite(&mut g, z, &OptConfig::default(), &mut stats);
        let got = evaluate(&g, opt, &src).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn pushdown_through_recycled_operand() {
        // (x + c(10, 20))[c(3, 2)] where x has length 6: operand recycling
        // must be re-mapped, not broken.
        let mut g = ExprGraph::new();
        let mut src = MemSources::new();
        let x_ref = src.add_vector(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = g.vec_source(x_ref, 6);
        let lit = g.literal(vec![10.0, 20.0]);
        let sum = g.zip(BinOp::Add, x, lit).unwrap();
        let idx = g.literal(vec![3.0, 2.0]);
        let z = g.gather(sum, idx).unwrap();

        let want = evaluate(&g, z, &src).unwrap();
        assert_eq!(want, Value::vector(vec![13.0, 22.0]));
        let mut stats = no_stats();
        let opt = rewrite(&mut g, z, &OptConfig::default(), &mut stats);
        assert_eq!(evaluate(&g, opt, &src).unwrap(), want);
        assert!(stats.gathers_pushed >= 1);
    }

    #[test]
    fn gather_of_range_becomes_arithmetic() {
        let mut g = ExprGraph::new();
        let src = MemSources::new();
        let r = g.range(5, 100); // 5..104
        let idx = g.literal(vec![1.0, 50.0, 100.0]);
        let z = g.gather(r, idx).unwrap();
        let mut stats = no_stats();
        let opt = rewrite(&mut g, z, &OptConfig::default(), &mut stats);
        // No Gather survives.
        for id in g.reachable(&[opt]) {
            assert!(!matches!(g.node(id), Node::Gather { .. }));
        }
        assert_eq!(
            evaluate(&g, opt, &src).unwrap(),
            Value::vector(vec![5.0, 54.0, 104.0])
        );
    }

    #[test]
    fn nested_gathers_compose() {
        let mut g = ExprGraph::new();
        let mut src = MemSources::new();
        let x_ref = src.add_vector(vec![10.0, 20.0, 30.0, 40.0]);
        let x = g.vec_source(x_ref, 4);
        let j = g.literal(vec![4.0, 3.0, 2.0, 1.0]);
        let xi = g.gather(x, j).unwrap();
        let i = g.literal(vec![2.0]);
        let z = g.gather(xi, i).unwrap();
        let want = evaluate(&g, z, &src).unwrap();
        let mut stats = no_stats();
        let opt = rewrite(&mut g, z, &OptConfig::default(), &mut stats);
        assert_eq!(evaluate(&g, opt, &src).unwrap(), want);
    }

    #[test]
    fn full_slice_gather_is_identity() {
        let mut g = ExprGraph::new();
        let x = g.vec_source(SourceRef(0), 8);
        let idx = g.range(1, 8);
        let z = g.gather(x, idx).unwrap();
        let mut stats = no_stats();
        let opt = rewrite(&mut g, z, &OptConfig::default(), &mut stats);
        assert_eq!(opt, x);
    }

    #[test]
    fn constant_folding_and_identities() {
        let mut g = ExprGraph::new();
        let x = g.vec_source(SourceRef(0), 4);
        let mut stats = no_stats();

        // sqrt(16) folds.
        let sixteen = g.scalar(16.0);
        let s = g.map(UnOp::Sqrt, sixteen);
        let opt = rewrite(&mut g, s, &OptConfig::default(), &mut stats);
        assert_eq!(*g.node(opt), Node::Scalar(4.0));

        // x * 1 -> x; x + 0 -> x; x ^ 1 -> x.
        let one = g.scalar(1.0);
        let zero = g.scalar(0.0);
        let m = g.zip(BinOp::Mul, x, one).unwrap();
        let a = g.zip(BinOp::Add, m, zero).unwrap();
        let p = g.zip(BinOp::Pow, a, one).unwrap();
        let opt = rewrite(&mut g, p, &OptConfig::default(), &mut stats);
        assert_eq!(opt, x);

        // 0 - x -> -x.
        let sub = g.zip(BinOp::Sub, zero, x).unwrap();
        let opt = rewrite(&mut g, sub, &OptConfig::default(), &mut stats);
        assert!(matches!(*g.node(opt), Node::Map { op: UnOp::Neg, .. }));
    }

    #[test]
    fn pow_two_strength_reduces() {
        let mut g = ExprGraph::new();
        let x = g.vec_source(SourceRef(0), 4);
        let two = g.scalar(2.0);
        let p = g.zip(BinOp::Pow, x, two).unwrap();
        let mut stats = no_stats();
        let opt = rewrite(&mut g, p, &OptConfig::default(), &mut stats);
        assert!(matches!(
            *g.node(opt),
            Node::Map {
                op: UnOp::Square,
                ..
            }
        ));
    }

    #[test]
    fn sparse_transpose_routes_by_density() {
        // Below the threshold: t(sparse) plans the native sparse kernel.
        let mut g = ExprGraph::new();
        let sp = g.sp_mat_source(SourceRef(0), 100, 100, 50); // density 0.005
        let t = g.transpose(sp).unwrap();
        let mut stats = no_stats();
        let opt = rewrite(&mut g, t, &OptConfig::default(), &mut stats);
        assert!(
            matches!(*g.node(opt), Node::SpTranspose { .. }),
            "stays sparse"
        );
        assert_eq!(stats.sparse_transposes, 1);
        assert_eq!(stats.transpose_densified, 0);

        // At/above the threshold: densify first, then a dense transpose.
        let mut g = ExprGraph::new();
        let sp = g.sp_mat_source(SourceRef(0), 10, 10, 60); // density 0.6
        let t = g.transpose(sp).unwrap();
        let mut stats = no_stats();
        let opt = rewrite(&mut g, t, &OptConfig::default(), &mut stats);
        let Node::Transpose { input } = *g.node(opt) else {
            panic!("dense transpose expected, got {:?}", g.node(opt));
        };
        assert!(matches!(*g.node(input), Node::Densify { .. }));
        assert_eq!(stats.transpose_densified, 1);
        assert_eq!(stats.sparse_transposes, 0);
    }

    #[test]
    fn double_sparse_transpose_cancels() {
        let mut g = ExprGraph::new();
        let sp = g.sp_mat_source(SourceRef(0), 64, 32, 10);
        let t = g.transpose(sp).unwrap();
        let tt = g.transpose(t).unwrap();
        let mut stats = no_stats();
        let opt = rewrite(&mut g, tt, &OptConfig::default(), &mut stats);
        assert_eq!(opt, sp, "t(t(A)) is A even through the sparse plan");
    }

    #[test]
    fn matmul_sees_through_planned_transpose() {
        // t(sparse) %*% dense: the transposed operand's density statistic
        // is visible through SpTranspose, so the product stays on the
        // sparse kernels below the threshold.
        let mut g = ExprGraph::new();
        let sp = g.sp_mat_source(SourceRef(0), 40, 80, 30); // density < 1%
        let t = g.transpose(sp).unwrap(); // 80x40
        let d = g.mat_source(SourceRef(1), 40, 8);
        let prod = g.matmul(t, d).unwrap();
        let mut stats = no_stats();
        let opt = rewrite(&mut g, prod, &OptConfig::default(), &mut stats);
        let Node::MatMul { lhs, .. } = *g.node(opt) else {
            panic!("matmul preserved")
        };
        assert!(matches!(*g.node(lhs), Node::SpTranspose { .. }));
        assert_eq!(stats.sparse_transposes, 1);
        assert_eq!(stats.sparse_kernels, 1, "operand stayed sparse: {stats:?}");
        assert_eq!(stats.sparse_densified, 0);
    }

    #[test]
    fn dense_sparse_matmul_routes_by_density_on_the_rhs() {
        let run = |nnz: u64| {
            let mut g = ExprGraph::new();
            let d = g.mat_source(SourceRef(0), 16, 40);
            let sp = g.sp_mat_source(SourceRef(1), 40, 25, nnz);
            let prod = g.matmul(d, sp).unwrap();
            let mut stats = no_stats();
            let opt = rewrite(&mut g, prod, &OptConfig::default(), &mut stats);
            let Node::MatMul { rhs, .. } = *g.node(opt) else {
                panic!("matmul preserved")
            };
            (matches!(*g.node(rhs), Node::SpMatSource { .. }), stats)
        };
        // 1% density: the rhs stays sparse (the executor runs dmspm).
        let (sparse_rhs, stats) = run(10);
        assert!(sparse_rhs);
        assert_eq!((stats.sparse_kernels, stats.sparse_densified), (1, 0));
        // 60% density: the rhs densifies.
        let (sparse_rhs, stats) = run(600);
        assert!(!sparse_rhs);
        assert_eq!((stats.sparse_kernels, stats.sparse_densified), (0, 1));
    }

    #[test]
    fn double_transpose_cancels() {
        let mut g = ExprGraph::new();
        let m = g.mat_source(SourceRef(0), 3, 4);
        let t = g.transpose(m).unwrap();
        let tt = g.transpose(t).unwrap();
        let mut stats = no_stats();
        let opt = rewrite(&mut g, tt, &OptConfig::default(), &mut stats);
        assert_eq!(opt, m);
    }

    #[test]
    fn disabled_pushdown_leaves_gather_alone() {
        let mut g = ExprGraph::new();
        let x = g.vec_source(SourceRef(0), 100);
        let two = g.scalar(2.0);
        let sq = g.zip(BinOp::Pow, x, two).unwrap();
        let idx = g.literal(vec![5.0]);
        let z = g.gather(sq, idx).unwrap();
        let cfg = OptConfig {
            pushdown: false,
            ..OptConfig::default()
        };
        let mut stats = no_stats();
        let opt = rewrite(&mut g, z, &cfg, &mut stats);
        assert!(matches!(g.node(opt), Node::Gather { .. }));
        assert_eq!(stats.gathers_pushed, 0);
    }

    #[test]
    fn scalar_ifelse_selects_branch() {
        let mut g = ExprGraph::new();
        let x = g.vec_source(SourceRef(0), 4);
        let y = g.vec_source(SourceRef(1), 4);
        let t = g.scalar(1.0);
        let ie = g.if_else(t, x, y).unwrap();
        let mut stats = no_stats();
        let opt = rewrite(&mut g, ie, &OptConfig::default(), &mut stats);
        assert_eq!(opt, x);
    }
}
