//! Matrix-chain multiplication ordering by dynamic programming (§5,
//! "Reordering Computation").
//!
//! R evaluates `A %*% B %*% C` in program order; RIOT exploits
//! associativity: the classic O(k³) DP finds the parenthesization with the
//! fewest scalar multiplications, and (per Appendix B) executing each
//! product with the square-tiled schedule then attains the chain's I/O
//! lower bound Θ(N / (B·√M)).

use crate::cost::ChainTree;

/// Result of chain optimization.
#[derive(Debug, Clone)]
pub struct ChainPlan {
    /// Optimal parenthesization.
    pub tree: ChainTree,
    /// Scalar multiplications under that order.
    pub flops: f64,
}

/// Find the multiplication order minimizing scalar multiplications for a
/// chain of `k = dims.len() - 1` matrices where matrix `i` is
/// `dims[i] x dims[i+1]`.
pub fn optimal_order(dims: &[usize]) -> ChainPlan {
    let k = dims.len() - 1;
    assert!(k >= 1, "chain needs at least one matrix");
    if k == 1 {
        return ChainPlan {
            tree: ChainTree::Leaf(0),
            flops: 0.0,
        };
    }
    // cost[i][j] = min flops to compute the product of matrices i..=j.
    let mut cost = vec![vec![0.0f64; k]; k];
    let mut split = vec![vec![0usize; k]; k];
    for span in 1..k {
        for i in 0..k - span {
            let j = i + span;
            let mut best = f64::INFINITY;
            let mut best_s = i;
            for s in i..j {
                let c = cost[i][s]
                    + cost[s + 1][j]
                    + (dims[i] as f64) * (dims[s + 1] as f64) * (dims[j + 1] as f64);
                if c < best {
                    best = c;
                    best_s = s;
                }
            }
            cost[i][j] = best;
            split[i][j] = best_s;
        }
    }
    ChainPlan {
        tree: build(&split, 0, k - 1),
        flops: cost[0][k - 1],
    }
}

fn build(split: &[Vec<usize>], i: usize, j: usize) -> ChainTree {
    if i == j {
        return ChainTree::Leaf(i);
    }
    let s = split[i][j];
    ChainTree::Mul(
        Box::new(build(split, i, s)),
        Box::new(build(split, s + 1, j)),
    )
}

/// Enumerate every parenthesization of `k` matrices (Catalan many) —
/// exponential, used only to verify the DP in tests and benches.
pub fn all_orders(k: usize) -> Vec<ChainTree> {
    fn rec(i: usize, j: usize) -> Vec<ChainTree> {
        if i == j {
            return vec![ChainTree::Leaf(i)];
        }
        let mut out = Vec::new();
        for s in i..j {
            for l in rec(i, s) {
                for r in rec(s + 1, j) {
                    out.push(ChainTree::Mul(Box::new(l.clone()), Box::new(r)));
                }
            }
        }
        out
    }
    rec(0, k - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_matrix_is_a_leaf() {
        let plan = optimal_order(&[5, 7]);
        assert_eq!(plan.tree, ChainTree::Leaf(0));
        assert_eq!(plan.flops, 0.0);
    }

    #[test]
    fn textbook_example() {
        // CLRS example: dims 30x35, 35x15, 15x5, 5x10, 10x20, 20x25
        // optimal = 15125 multiplications.
        let dims = [30, 35, 15, 5, 10, 20, 25];
        let plan = optimal_order(&dims);
        assert_eq!(plan.flops, 15_125.0);
        assert_eq!(plan.tree.flops(&dims), 15_125.0);
    }

    #[test]
    fn paper_skew_example_picks_right_association() {
        // A(n x n/s) B(n/s x n) C(n x n) with s > 1: optimal is A(BC).
        let n = 1000;
        for s in [2, 4, 6, 8] {
            let dims = [n, n / s, n, n];
            let plan = optimal_order(&dims);
            assert_eq!(plan.tree.render(), "(A1 (A2 A3))", "s={s}");
        }
    }

    #[test]
    fn dp_matches_brute_force() {
        // Exhaustive check on assorted chains up to length 6.
        let cases: Vec<Vec<usize>> = vec![
            vec![2, 3, 4],
            vec![10, 1, 10, 1],
            vec![7, 3, 9, 2, 8],
            vec![4, 4, 4, 4, 4, 4],
            vec![100, 2, 50, 3, 75, 4],
            vec![1, 100, 1, 100, 1, 100, 1],
        ];
        for dims in cases {
            let plan = optimal_order(&dims);
            let brute = all_orders(dims.len() - 1)
                .into_iter()
                .map(|t| t.flops(&dims))
                .fold(f64::INFINITY, f64::min);
            assert_eq!(plan.flops, brute, "dims {dims:?}");
        }
    }

    #[test]
    fn catalan_counts() {
        assert_eq!(all_orders(1).len(), 1);
        assert_eq!(all_orders(2).len(), 1);
        assert_eq!(all_orders(3).len(), 2);
        assert_eq!(all_orders(4).len(), 5);
        assert_eq!(all_orders(5).len(), 14);
    }

    #[test]
    fn dp_never_worse_than_in_order() {
        let dims = [64, 32, 128, 16, 256, 8];
        let plan = optimal_order(&dims);
        let in_order = ChainTree::in_order(dims.len() - 1);
        assert!(plan.flops <= in_order.flops(&dims));
    }
}
