//! The RIOT optimizer: rewrite rules plus matrix-chain reordering.
//!
//! [`optimize`] is the single entry point engines call at a forcing point
//! (`print`, collection): it rewrites the DAG (subscript pushdown, masked
//! updates to conditionals, folding — see [`rules`]) and then reassociates
//! matrix-multiplication chains by dynamic programming (see [`chain`]),
//! exactly the two optimization levels §5 describes.

pub mod chain;
pub mod rules;

use std::collections::HashMap;

pub use chain::{all_orders, optimal_order, ChainPlan};
pub use rules::{rewrite, OptConfig, RewriteStats};

use crate::expr::{Node, NodeId};
use crate::graph::ExprGraph;
use crate::shape::Shape;

/// Optimize the DAG rooted at `root`; returns the new root and statistics.
pub fn optimize(g: &mut ExprGraph, root: NodeId, cfg: &OptConfig) -> (NodeId, RewriteStats) {
    let mut stats = RewriteStats::default();
    let mut out = rewrite(g, root, cfg, &mut stats);
    if cfg.reorder_chains {
        let mut memo = HashMap::new();
        out = reorder(g, out, &mut stats, &mut memo);
    }
    (out, stats)
}

/// Recursively reassociate every maximal `MatMul` chain below `id`.
fn reorder(
    g: &mut ExprGraph,
    id: NodeId,
    stats: &mut RewriteStats,
    memo: &mut HashMap<NodeId, NodeId>,
) -> NodeId {
    if let Some(&r) = memo.get(&id) {
        return r;
    }
    let node = g.node(id).clone();
    let out = if matches!(node, Node::MatMul { .. }) {
        // Flatten the maximal chain of MatMuls rooted here.
        let mut leaves = Vec::new();
        flatten_chain(g, id, &mut leaves);
        // Recurse inside the leaves (they may contain further chains, e.g.
        // under a Transpose).
        let leaves: Vec<NodeId> = leaves
            .into_iter()
            .map(|l| reorder(g, l, stats, memo))
            .collect();
        if leaves.len() <= 2 {
            rebuild_binary(g, &leaves)
        } else {
            let mut dims = Vec::with_capacity(leaves.len() + 1);
            for (i, &l) in leaves.iter().enumerate() {
                let Shape::Matrix(r, c) = g.shape(l) else {
                    unreachable!("matmul leaves are matrices");
                };
                if i == 0 {
                    dims.push(r);
                }
                dims.push(c);
            }
            let plan = chain::optimal_order(&dims);
            stats.chains_reordered += 1;
            build_tree(g, &plan.tree, &leaves)
        }
    } else {
        rebuild_with_children(g, &node, stats, memo)
    };
    memo.insert(id, out);
    out
}

/// Collect the operand leaves of the maximal MatMul subtree at `id`.
fn flatten_chain(g: &ExprGraph, id: NodeId, leaves: &mut Vec<NodeId>) {
    match *g.node(id) {
        Node::MatMul { lhs, rhs } => {
            flatten_chain(g, lhs, leaves);
            flatten_chain(g, rhs, leaves);
        }
        _ => leaves.push(id),
    }
}

fn rebuild_binary(g: &mut ExprGraph, leaves: &[NodeId]) -> NodeId {
    match leaves {
        [only] => *only,
        [l, r] => g.matmul(*l, *r).expect("shapes preserved"),
        _ => unreachable!(),
    }
}

fn build_tree(g: &mut ExprGraph, tree: &crate::cost::ChainTree, leaves: &[NodeId]) -> NodeId {
    match tree {
        crate::cost::ChainTree::Leaf(i) => leaves[*i],
        crate::cost::ChainTree::Mul(l, r) => {
            let lhs = build_tree(g, l, leaves);
            let rhs = build_tree(g, r, leaves);
            g.matmul(lhs, rhs).expect("shapes preserved")
        }
    }
}

fn rebuild_with_children(
    g: &mut ExprGraph,
    node: &Node,
    stats: &mut RewriteStats,
    memo: &mut HashMap<NodeId, NodeId>,
) -> NodeId {
    let go = |g: &mut ExprGraph,
              id: NodeId,
              stats: &mut RewriteStats,
              memo: &mut HashMap<NodeId, NodeId>| { reorder(g, id, stats, memo) };
    match node.clone() {
        n @ (Node::VecSource { .. }
        | Node::MatSource { .. }
        | Node::SpMatSource { .. }
        | Node::Literal(_)
        | Node::Scalar(_)
        | Node::Range { .. }) => {
            // Leaves: re-intern is unnecessary; find the existing id via a
            // rebuild through the public builders.
            match n {
                Node::VecSource { source, len } => g.vec_source(source, len),
                Node::MatSource { source, rows, cols } => g.mat_source(source, rows, cols),
                Node::SpMatSource {
                    source,
                    rows,
                    cols,
                    nnz,
                } => g.sp_mat_source(source, rows, cols, nnz),
                Node::Literal(v) => g.literal(v.as_ref().clone()),
                Node::Scalar(x) => g.scalar(x),
                Node::Range { start, len } => g.range(start, len),
                _ => unreachable!(),
            }
        }
        Node::Densify { input } => {
            let input = go(g, input, stats, memo);
            g.densify(input).expect("shapes preserved")
        }
        Node::Sparsify { input } => {
            let input = go(g, input, stats, memo);
            g.sparsify(input).expect("shapes preserved")
        }
        Node::Map { op, input } => {
            let input = go(g, input, stats, memo);
            g.map(op, input)
        }
        Node::Zip { op, lhs, rhs } => {
            let lhs = go(g, lhs, stats, memo);
            let rhs = go(g, rhs, stats, memo);
            g.zip(op, lhs, rhs).expect("shapes preserved")
        }
        Node::IfElse { cond, yes, no } => {
            let cond = go(g, cond, stats, memo);
            let yes = go(g, yes, stats, memo);
            let no = go(g, no, stats, memo);
            g.if_else(cond, yes, no).expect("shapes preserved")
        }
        Node::Gather { data, index } => {
            let data = go(g, data, stats, memo);
            let index = go(g, index, stats, memo);
            g.gather(data, index).expect("shapes preserved")
        }
        Node::SubAssign { data, index, value } => {
            let data = go(g, data, stats, memo);
            let index = go(g, index, stats, memo);
            let value = go(g, value, stats, memo);
            g.sub_assign(data, index, value).expect("shapes preserved")
        }
        Node::MaskAssign { data, mask, value } => {
            let data = go(g, data, stats, memo);
            let mask = go(g, mask, stats, memo);
            let value = go(g, value, stats, memo);
            g.mask_assign(data, mask, value).expect("shapes preserved")
        }
        Node::MatMul { .. } => unreachable!("handled by caller"),
        Node::Transpose { input } => {
            let input = go(g, input, stats, memo);
            g.transpose(input).expect("shapes preserved")
        }
        Node::SpTranspose { input } => {
            let input = go(g, input, stats, memo);
            g.sp_transpose(input).expect("shapes preserved")
        }
        Node::Agg { op, input } => {
            let input = go(g, input, stats, memo);
            g.agg(op, input)
        }
        Node::Chol { input } => {
            let input = go(g, input, stats, memo);
            g.chol(input).expect("shapes preserved")
        }
        Node::Solve { lhs, rhs } => {
            let lhs = go(g, lhs, stats, memo);
            let rhs = go(g, rhs, stats, memo);
            g.solve(lhs, rhs).expect("shapes preserved")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate, MemSources};
    use crate::expr::AggOp;

    #[test]
    fn chain_of_three_reorders_under_skew() {
        let mut g = ExprGraph::new();
        let mut src = MemSources::new();
        // A: 8x2, B: 2x8, C: 8x8 -> optimal is A(BC).
        let a_ref = src.add_matrix(8, 2, (0..16).map(|i| i as f64).collect());
        let b_ref = src.add_matrix(2, 8, (0..16).map(|i| (i as f64) * 0.5).collect());
        let c_ref = src.add_matrix(8, 8, (0..64).map(|i| (i % 7) as f64).collect());
        let a = g.mat_source(a_ref, 8, 2);
        let b = g.mat_source(b_ref, 2, 8);
        let c = g.mat_source(c_ref, 8, 8);
        let ab = g.matmul(a, b).unwrap();
        let abc = g.matmul(ab, c).unwrap();

        let want = evaluate(&g, abc, &src).unwrap();
        let (opt, stats) = optimize(&mut g, abc, &OptConfig::default());
        assert_eq!(stats.chains_reordered, 1);
        // New root multiplies A by (BC): its rhs is a MatMul.
        let Node::MatMul { lhs, rhs } = *g.node(opt) else {
            panic!("root must stay a matmul")
        };
        assert!(matches!(g.node(lhs), Node::MatSource { .. }));
        assert!(matches!(g.node(rhs), Node::MatMul { .. }));
        assert_eq!(evaluate(&g, opt, &src).unwrap(), want);
    }

    #[test]
    fn reordering_respects_disable_flag() {
        let mut g = ExprGraph::new();
        let a = g.mat_source(crate::expr::SourceRef(0), 8, 2);
        let b = g.mat_source(crate::expr::SourceRef(1), 2, 8);
        let c = g.mat_source(crate::expr::SourceRef(2), 8, 8);
        let ab = g.matmul(a, b).unwrap();
        let abc = g.matmul(ab, c).unwrap();
        let cfg = OptConfig {
            reorder_chains: false,
            ..OptConfig::default()
        };
        let (opt, stats) = optimize(&mut g, abc, &cfg);
        assert_eq!(stats.chains_reordered, 0);
        let Node::MatMul { lhs, .. } = *g.node(opt) else {
            panic!()
        };
        assert!(
            matches!(g.node(lhs), Node::MatMul { .. }),
            "stays left-deep"
        );
    }

    #[test]
    fn chains_inside_other_operators_are_found() {
        let mut g = ExprGraph::new();
        let mut src = MemSources::new();
        let a_ref = src.add_matrix(4, 1, vec![1.0, 2.0, 3.0, 4.0]);
        let b_ref = src.add_matrix(1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        let c_ref = src.add_matrix(4, 4, (0..16).map(|i| i as f64).collect());
        let a = g.mat_source(a_ref, 4, 1);
        let b = g.mat_source(b_ref, 1, 4);
        let c = g.mat_source(c_ref, 4, 4);
        let ab = g.matmul(a, b).unwrap();
        let abc = g.matmul(ab, c).unwrap();
        let total = g.agg(AggOp::Sum, abc);
        let want = evaluate(&g, total, &src).unwrap();
        let (opt, stats) = optimize(&mut g, total, &OptConfig::default());
        assert_eq!(stats.chains_reordered, 1);
        assert_eq!(evaluate(&g, opt, &src).unwrap(), want);
    }

    #[test]
    fn longer_chain_optimal_order() {
        let mut g = ExprGraph::new();
        // 4 matrices with strongly skewed dims.
        let dims = [30usize, 1, 40, 1, 30];
        let mats: Vec<NodeId> = (0..4)
            .map(|i| g.mat_source(crate::expr::SourceRef(i as u32), dims[i], dims[i + 1]))
            .collect();
        let mut chain = mats[0];
        for &m in &mats[1..] {
            chain = g.matmul(chain, m).unwrap();
        }
        let (opt, _) = optimize(&mut g, chain, &OptConfig::default());
        // Verify the rebuilt tree's flops equal the DP optimum.
        let plan = optimal_order(&dims);
        let mut leaves = Vec::new();
        flatten_chain(&g, opt, &mut leaves);
        assert_eq!(leaves.len(), 4);
        // Reconstruct the tree shape from the graph and compare flops.
        fn tree_of(g: &ExprGraph, id: NodeId, leaves: &[NodeId]) -> crate::cost::ChainTree {
            if let Some(pos) = leaves.iter().position(|&l| l == id) {
                return crate::cost::ChainTree::Leaf(pos);
            }
            let Node::MatMul { lhs, rhs } = *g.node(id) else {
                panic!("unexpected node in chain")
            };
            crate::cost::ChainTree::Mul(
                Box::new(tree_of(g, lhs, leaves)),
                Box::new(tree_of(g, rhs, leaves)),
            )
        }
        let rebuilt = tree_of(&g, opt, &leaves);
        assert_eq!(rebuilt.flops(&dims), plan.flops);
    }
}
