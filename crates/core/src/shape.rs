//! Shapes of expression values and the broadcasting rules between them.

use std::fmt;

/// The shape of a value flowing through the expression DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shape {
    /// A single number (R treats these as length-1 vectors; we keep them
    /// distinct so the optimizer can recognise broadcasts).
    Scalar,
    /// A vector of `n` elements.
    Vector(usize),
    /// A `rows x cols` matrix.
    Matrix(usize, usize),
}

impl Shape {
    /// Total number of elements.
    pub fn len(&self) -> usize {
        match *self {
            Shape::Scalar => 1,
            Shape::Vector(n) => n,
            Shape::Matrix(r, c) => r * c,
        }
    }

    /// True for zero-element shapes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if this shape broadcasts against `other` under R's recycling
    /// rule: scalars combine with anything; vectors combine when the
    /// shorter length divides the longer (R warns otherwise; we reject).
    pub fn broadcasts_with(&self, other: &Shape) -> bool {
        match (self, other) {
            (Shape::Scalar, _) | (_, Shape::Scalar) => true,
            (Shape::Vector(a), Shape::Vector(b)) => {
                let (lo, hi) = (*a.min(b), *a.max(b));
                lo > 0 && hi % lo == 0
            }
            // Elementwise ops on equal-shape matrices.
            (Shape::Matrix(r1, c1), Shape::Matrix(r2, c2)) => r1 == r2 && c1 == c2,
            _ => false,
        }
    }

    /// Resulting shape of an elementwise combination (caller must have
    /// checked [`Shape::broadcasts_with`]).
    pub fn broadcast(&self, other: &Shape) -> Shape {
        match (self, other) {
            (Shape::Scalar, s) | (s, Shape::Scalar) => *s,
            (Shape::Vector(a), Shape::Vector(b)) => Shape::Vector(*a.max(b)),
            (m @ Shape::Matrix(..), _) => *m,
            (_, m @ Shape::Matrix(..)) => *m,
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Shape::Scalar => write!(f, "scalar"),
            Shape::Vector(n) => write!(f, "vec[{n}]"),
            Shape::Matrix(r, c) => write!(f, "mat[{r}x{c}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths() {
        assert_eq!(Shape::Scalar.len(), 1);
        assert_eq!(Shape::Vector(7).len(), 7);
        assert_eq!(Shape::Matrix(3, 4).len(), 12);
        assert!(Shape::Vector(0).is_empty());
    }

    #[test]
    fn scalar_broadcasts_with_everything() {
        for s in [Shape::Scalar, Shape::Vector(5), Shape::Matrix(2, 2)] {
            assert!(Shape::Scalar.broadcasts_with(&s));
            assert_eq!(Shape::Scalar.broadcast(&s), s);
        }
    }

    #[test]
    fn recycling_rule() {
        assert!(Shape::Vector(6).broadcasts_with(&Shape::Vector(3)));
        assert!(Shape::Vector(3).broadcasts_with(&Shape::Vector(6)));
        assert!(!Shape::Vector(6).broadcasts_with(&Shape::Vector(4)));
        assert_eq!(
            Shape::Vector(3).broadcast(&Shape::Vector(6)),
            Shape::Vector(6)
        );
    }

    #[test]
    fn matrices_need_equal_shape() {
        assert!(Shape::Matrix(2, 3).broadcasts_with(&Shape::Matrix(2, 3)));
        assert!(!Shape::Matrix(2, 3).broadcasts_with(&Shape::Matrix(3, 2)));
        assert!(!Shape::Matrix(2, 3).broadcasts_with(&Shape::Vector(6)));
    }

    #[test]
    fn display() {
        assert_eq!(Shape::Vector(4).to_string(), "vec[4]");
        assert_eq!(Shape::Matrix(2, 5).to_string(), "mat[2x5]");
    }
}
