//! Reference in-memory evaluator.
//!
//! This is the semantic oracle for the whole system: it evaluates an
//! expression DAG with plain `Vec<f64>` arithmetic, no I/O and no
//! cleverness. Every engine (Plain R, Strawman, MatNamed, RIOT) and every
//! optimizer rewrite is property-tested against it — if an optimization
//! changes a result relative to this evaluator, the optimization is wrong.

use std::collections::HashMap;
use std::sync::Arc;

use crate::expr::{AggOp, ExprError, Node, NodeId, SourceRef};
use crate::graph::ExprGraph;
use crate::shape::Shape;

/// A fully materialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A scalar.
    Scalar(f64),
    /// A vector.
    Vector(Arc<Vec<f64>>),
    /// A row-major matrix.
    Matrix {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
        /// Row-major data.
        data: Arc<Vec<f64>>,
    },
}

impl Value {
    /// Build a vector value.
    pub fn vector(v: Vec<f64>) -> Value {
        Value::Vector(Arc::new(v))
    }

    /// Build a matrix value from row-major data.
    pub fn matrix(rows: usize, cols: usize, data: Vec<f64>) -> Value {
        assert_eq!(rows * cols, data.len());
        Value::Matrix {
            rows,
            cols,
            data: Arc::new(data),
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            Value::Scalar(_) => 1,
            Value::Vector(v) => v.len(),
            Value::Matrix { data, .. } => data.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element `i` under R recycling (scalar repeats; vectors cycle).
    pub fn at(&self, i: usize) -> f64 {
        match self {
            Value::Scalar(x) => *x,
            Value::Vector(v) => v[i % v.len()],
            Value::Matrix { data, .. } => data[i % data.len()],
        }
    }

    /// The value as a flat vector (scalars become length-1).
    pub fn to_flat(&self) -> Vec<f64> {
        match self {
            Value::Scalar(x) => vec![*x],
            Value::Vector(v) => v.as_ref().clone(),
            Value::Matrix { data, .. } => data.as_ref().clone(),
        }
    }

    /// Scalar extraction; panics on non-scalars.
    pub fn as_scalar(&self) -> f64 {
        match self {
            Value::Scalar(x) => *x,
            _ => panic!("expected scalar value"),
        }
    }

    /// The shape of this value.
    pub fn shape(&self) -> Shape {
        match self {
            Value::Scalar(_) => Shape::Scalar,
            Value::Vector(v) => Shape::Vector(v.len()),
            Value::Matrix { rows, cols, .. } => Shape::Matrix(*rows, *cols),
        }
    }
}

/// Supplies the contents of stored sources to the evaluator.
pub trait SourceData {
    /// Row-major contents and shape of vector source `s`.
    fn vector(&self, s: SourceRef) -> Vec<f64>;
    /// `(rows, cols, row-major data)` of matrix source `s`.
    fn matrix(&self, s: SourceRef) -> (usize, usize, Vec<f64>);
    /// `(rows, cols, row-major data)` of sparse matrix source `s`. The
    /// evaluator is the dense semantic oracle, so sparse sources
    /// materialize densely here; implementations without sparse data can
    /// keep the default.
    fn sparse(&self, s: SourceRef) -> (usize, usize, Vec<f64>) {
        panic!("no sparse source {} registered", s.0)
    }
}

/// A map-backed [`SourceData`] for tests and small programs.
#[derive(Default)]
pub struct MemSources {
    vectors: HashMap<u32, Vec<f64>>,
    matrices: HashMap<u32, (usize, usize, Vec<f64>)>,
    sparse: HashMap<u32, (usize, usize, Vec<f64>)>,
}

impl MemSources {
    /// Empty source set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a vector, returning its reference.
    pub fn add_vector(&mut self, data: Vec<f64>) -> SourceRef {
        let id = self.next_id();
        self.vectors.insert(id, data);
        SourceRef(id)
    }

    /// Register a row-major matrix, returning its reference.
    pub fn add_matrix(&mut self, rows: usize, cols: usize, data: Vec<f64>) -> SourceRef {
        assert_eq!(rows * cols, data.len());
        let id = self.next_id();
        self.matrices.insert(id, (rows, cols, data));
        SourceRef(id)
    }

    /// Register a sparse matrix from COO triplets, returning its
    /// reference (and the resulting non-zero count, for `SpMatSource`).
    pub fn add_sparse(
        &mut self,
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> (SourceRef, u64) {
        let mut data = vec![0.0; rows * cols];
        for &(r, c, v) in triplets {
            data[r * cols + c] += v;
        }
        let nnz = data.iter().filter(|v| **v != 0.0).count() as u64;
        let id = self.next_id();
        self.sparse.insert(id, (rows, cols, data));
        (SourceRef(id), nnz)
    }

    fn next_id(&self) -> u32 {
        (self.vectors.len() + self.matrices.len() + self.sparse.len()) as u32
    }
}

impl SourceData for MemSources {
    fn vector(&self, s: SourceRef) -> Vec<f64> {
        self.vectors
            .get(&s.0)
            .expect("unknown vector source")
            .clone()
    }

    fn matrix(&self, s: SourceRef) -> (usize, usize, Vec<f64>) {
        self.matrices
            .get(&s.0)
            .expect("unknown matrix source")
            .clone()
    }

    fn sparse(&self, s: SourceRef) -> (usize, usize, Vec<f64>) {
        self.sparse
            .get(&s.0)
            .expect("unknown sparse source")
            .clone()
    }
}

/// Evaluate `root` over `graph`, resolving stored arrays through `sources`.
pub fn evaluate(
    graph: &ExprGraph,
    root: NodeId,
    sources: &dyn SourceData,
) -> Result<Value, ExprError> {
    let mut memo: HashMap<NodeId, Value> = HashMap::new();
    for id in graph.reachable(&[root]) {
        let value = eval_node(graph, id, sources, &memo)?;
        memo.insert(id, value);
    }
    Ok(memo.remove(&root).expect("root evaluated"))
}

fn eval_node(
    graph: &ExprGraph,
    id: NodeId,
    sources: &dyn SourceData,
    memo: &HashMap<NodeId, Value>,
) -> Result<Value, ExprError> {
    let get = |id: &NodeId| memo.get(id).expect("child evaluated before parent");
    Ok(match graph.node(id) {
        Node::VecSource { source, .. } => Value::vector(sources.vector(*source)),
        Node::MatSource { source, .. } => {
            let (rows, cols, data) = sources.matrix(*source);
            Value::matrix(rows, cols, data)
        }
        Node::SpMatSource { source, .. } => {
            let (rows, cols, data) = sources.sparse(*source);
            Value::matrix(rows, cols, data)
        }
        // Representation conversions are identities to the dense oracle.
        Node::Densify { input } | Node::Sparsify { input } => get(input).clone(),
        Node::Literal(v) => Value::Vector(Arc::clone(v)),
        Node::Scalar(x) => Value::Scalar(*x),
        Node::Range { start, len } => {
            Value::vector((0..*len).map(|i| (*start + i as i64) as f64).collect())
        }
        Node::Map { op, input } => {
            let x = get(input);
            match x {
                Value::Scalar(v) => Value::Scalar(op.apply(*v)),
                Value::Vector(v) => Value::vector(v.iter().map(|&e| op.apply(e)).collect()),
                Value::Matrix { rows, cols, data } => {
                    Value::matrix(*rows, *cols, data.iter().map(|&e| op.apply(e)).collect())
                }
            }
        }
        Node::Zip { op, lhs, rhs } => {
            let (a, b) = (get(lhs), get(rhs));
            let out_shape = a.shape().broadcast(&b.shape());
            let n = out_shape.len();
            let data: Vec<f64> = (0..n).map(|i| op.apply(a.at(i), b.at(i))).collect();
            shape_value(out_shape, data)
        }
        Node::IfElse { cond, yes, no } => {
            let (c, y, n) = (get(cond), get(yes), get(no));
            let out_shape = c.shape().broadcast(&y.shape()).broadcast(&n.shape());
            let data: Vec<f64> = (0..out_shape.len())
                .map(|i| if c.at(i) != 0.0 { y.at(i) } else { n.at(i) })
                .collect();
            shape_value(out_shape, data)
        }
        Node::Gather { data, index } => {
            let d = get(data);
            let idx = get(index);
            let n = d.len();
            let mut out = Vec::with_capacity(idx.len());
            for k in 0..idx.len() {
                let raw = idx.at(k);
                let i = raw as i64;
                if i < 1 || i as usize > n {
                    return Err(ExprError::IndexOutOfBounds { index: i, len: n });
                }
                out.push(d.at(i as usize - 1));
            }
            Value::vector(out)
        }
        Node::SubAssign { data, index, value } => {
            let mut out = get(data).to_flat();
            let idx = get(index);
            let val = get(value);
            for k in 0..idx.len() {
                let i = idx.at(k) as i64;
                if i < 1 || i as usize > out.len() {
                    return Err(ExprError::IndexOutOfBounds {
                        index: i,
                        len: out.len(),
                    });
                }
                out[i as usize - 1] = val.at(k);
            }
            Value::vector(out)
        }
        Node::MaskAssign { data, mask, value } => {
            let mut out = get(data).to_flat();
            let m = get(mask);
            let val = get(value);
            for (i, slot) in out.iter_mut().enumerate() {
                if m.at(i) != 0.0 {
                    *slot = val.at(i);
                }
            }
            Value::vector(out)
        }
        Node::MatMul { lhs, rhs } => {
            let (a, b) = (get(lhs), get(rhs));
            let (
                Value::Matrix {
                    rows: n1,
                    cols: n2,
                    data: da,
                },
                Value::Matrix {
                    rows: r2,
                    cols: n3,
                    data: db,
                },
            ) = (a, b)
            else {
                return Err(ExprError::Expected {
                    what: "matrix",
                    got: a.shape(),
                });
            };
            assert_eq!(n2, r2, "shape checked at build time");
            let (n1, n2, n3) = (*n1, *n2, *n3);
            let mut out = vec![0.0; n1 * n3];
            for i in 0..n1 {
                for k in 0..n2 {
                    let aik = da[i * n2 + k];
                    for j in 0..n3 {
                        out[i * n3 + j] += aik * db[k * n3 + j];
                    }
                }
            }
            Value::matrix(n1, n3, out)
        }
        // The planned-sparse transpose is the same transpose to the dense
        // oracle — representation is a physical concern.
        Node::Transpose { input } | Node::SpTranspose { input } => {
            let x = get(input);
            let Value::Matrix { rows, cols, data } = x else {
                return Err(ExprError::Expected {
                    what: "matrix",
                    got: x.shape(),
                });
            };
            let (r, c) = (*rows, *cols);
            let mut out = vec![0.0; r * c];
            for i in 0..r {
                for j in 0..c {
                    out[j * r + i] = data[i * c + j];
                }
            }
            Value::matrix(c, r, out)
        }
        Node::Agg { op, input } => {
            let x = get(input);
            let n = x.len();
            let mut acc = op.init();
            for i in 0..n {
                acc = op.fold(acc, x.at(i));
            }
            if *op == AggOp::Mean && n > 0 {
                acc /= n as f64;
            }
            Value::Scalar(acc)
        }
        Node::Chol { input } => {
            let x = get(input);
            let Value::Matrix { rows, data, .. } = x else {
                return Err(ExprError::Expected {
                    what: "matrix",
                    got: x.shape(),
                });
            };
            let n = *rows;
            Value::matrix(n, n, dense_chol(data, n, x.shape())?)
        }
        Node::Solve { lhs, rhs } => {
            let (a, b) = (get(lhs), get(rhs));
            let (
                Value::Matrix { rows, data: da, .. },
                Value::Matrix {
                    cols: m, data: db, ..
                },
            ) = (a, b)
            else {
                return Err(ExprError::Expected {
                    what: "matrix",
                    got: a.shape(),
                });
            };
            let (n, m) = (*rows, *m);
            let l = dense_chol(da, n, a.shape())?;
            // Forward L·y = b, then backward Lᵀ·x = y, column block at once.
            let mut x = db.to_vec();
            for r in 0..n {
                for k in 0..r {
                    let lrk = l[r * n + k];
                    for c in 0..m {
                        x[r * m + c] -= lrk * x[k * m + c];
                    }
                }
                for c in 0..m {
                    x[r * m + c] /= l[r * n + r];
                }
            }
            for r in (0..n).rev() {
                for k in r + 1..n {
                    let lkr = l[k * n + r];
                    for c in 0..m {
                        x[r * m + c] -= lkr * x[k * m + c];
                    }
                }
                for c in 0..m {
                    x[r * m + c] /= l[r * n + r];
                }
            }
            Value::matrix(n, m, x)
        }
    })
}

/// Dense reference Cholesky: lower-triangular factor of the `n x n`
/// row-major `a` (only the lower triangle is read). Non-positive-definite
/// inputs error rather than yielding NaNs, matching the kernel contract.
fn dense_chol(a: &[f64], n: usize, shape: Shape) -> Result<Vec<f64>, ExprError> {
    let mut l = vec![0.0; n * n];
    for j in 0..n {
        let mut d = a[j * n + j];
        for k in 0..j {
            d -= l[j * n + k] * l[j * n + k];
        }
        if !d.is_finite() || d <= 0.0 {
            return Err(ExprError::Expected {
                what: "positive definite matrix",
                got: shape,
            });
        }
        let d = d.sqrt();
        l[j * n + j] = d;
        for i in j + 1..n {
            let mut s = a[i * n + j];
            for k in 0..j {
                s -= l[i * n + k] * l[j * n + k];
            }
            l[i * n + j] = s / d;
        }
    }
    Ok(l)
}

fn shape_value(shape: Shape, data: Vec<f64>) -> Value {
    match shape {
        Shape::Scalar => Value::Scalar(data[0]),
        Shape::Vector(_) => Value::vector(data),
        Shape::Matrix(r, c) => Value::matrix(r, c, data),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, UnOp};

    #[test]
    fn example_1_reference_semantics() {
        // d <- sqrt((x-xs)^2+(y-ys)^2) + sqrt((x-xe)^2+(y-ye)^2)
        let mut g = ExprGraph::new();
        let mut src = MemSources::new();
        let xs_data = vec![0.0, 3.0, 6.0];
        let ys_data = vec![0.0, 4.0, 8.0];
        let x = src.add_vector(xs_data);
        let y = src.add_vector(ys_data);
        let xv = g.vec_source(x, 3);
        let yv = g.vec_source(y, 3);
        let (xs, ys, xe, ye) = (0.0, 0.0, 6.0, 8.0);
        let leg = |g: &mut ExprGraph, px: f64, py: f64| {
            let cx = g.scalar(px);
            let cy = g.scalar(py);
            let dx = g.zip(BinOp::Sub, xv, cx).unwrap();
            let dy = g.zip(BinOp::Sub, yv, cy).unwrap();
            let dx2 = g.map(UnOp::Square, dx);
            let dy2 = g.map(UnOp::Square, dy);
            let s = g.zip(BinOp::Add, dx2, dy2).unwrap();
            g.map(UnOp::Sqrt, s)
        };
        let l1 = leg(&mut g, xs, ys);
        let l2 = leg(&mut g, xe, ye);
        let d = g.zip(BinOp::Add, l1, l2).unwrap();
        let got = evaluate(&g, d, &src).unwrap();
        // Point (0,0): 0 + 10; point (3,4): 5 + 5; point (6,8): 10 + 0.
        assert_eq!(got, Value::vector(vec![10.0, 10.0, 10.0]));
    }

    #[test]
    fn gather_is_one_based() {
        let mut g = ExprGraph::new();
        let mut src = MemSources::new();
        let v = src.add_vector(vec![10.0, 20.0, 30.0]);
        let vv = g.vec_source(v, 3);
        let idx = g.literal(vec![3.0, 1.0]);
        let z = g.gather(vv, idx).unwrap();
        assert_eq!(
            evaluate(&g, z, &src).unwrap(),
            Value::vector(vec![30.0, 10.0])
        );
    }

    #[test]
    fn gather_bounds_checked() {
        let mut g = ExprGraph::new();
        let mut src = MemSources::new();
        let v = src.add_vector(vec![1.0]);
        let vv = g.vec_source(v, 1);
        let idx = g.literal(vec![2.0]);
        let z = g.gather(vv, idx).unwrap();
        assert!(matches!(
            evaluate(&g, z, &src),
            Err(ExprError::IndexOutOfBounds { index: 2, len: 1 })
        ));
    }

    #[test]
    fn figure_2_mask_assign() {
        // b <- a^2; b[b>100] <- 100; b[1:10]
        let mut g = ExprGraph::new();
        let mut src = MemSources::new();
        let a_data: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let a = src.add_vector(a_data.clone());
        let av = g.vec_source(a, 20);
        let two = g.scalar(2.0);
        let b = g.zip(BinOp::Pow, av, two).unwrap();
        let hundred = g.scalar(100.0);
        let mask = g.zip(BinOp::Gt, b, hundred).unwrap();
        let b2 = g.mask_assign(b, mask, hundred).unwrap();
        let first10 = g.range(1, 10);
        let z = g.gather(b2, first10).unwrap();
        let want: Vec<f64> = (1..=10).map(|i| ((i * i) as f64).min(100.0)).collect();
        assert_eq!(evaluate(&g, z, &src).unwrap(), Value::vector(want));
    }

    #[test]
    fn sub_assign_replaces_positions() {
        let mut g = ExprGraph::new();
        let src = MemSources::new();
        let d = g.literal(vec![1.0, 2.0, 3.0, 4.0]);
        let idx = g.literal(vec![2.0, 4.0]);
        let val = g.literal(vec![20.0, 40.0]);
        let out = g.sub_assign(d, idx, val).unwrap();
        assert_eq!(
            evaluate(&g, out, &src).unwrap(),
            Value::vector(vec![1.0, 20.0, 3.0, 40.0])
        );
    }

    #[test]
    fn recycling_matches_r() {
        // c(1,2,3,4,5,6) + c(10,20) == c(11,22,13,24,15,26)
        let mut g = ExprGraph::new();
        let src = MemSources::new();
        let a = g.literal(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = g.literal(vec![10.0, 20.0]);
        let s = g.zip(BinOp::Add, a, b).unwrap();
        assert_eq!(
            evaluate(&g, s, &src).unwrap(),
            Value::vector(vec![11.0, 22.0, 13.0, 24.0, 15.0, 26.0])
        );
    }

    #[test]
    fn matmul_and_transpose() {
        let mut g = ExprGraph::new();
        let mut src = MemSources::new();
        let a = src.add_matrix(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = src.add_matrix(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let am = g.mat_source(a, 2, 3);
        let bm = g.mat_source(b, 3, 2);
        let ab = g.matmul(am, bm).unwrap();
        assert_eq!(
            evaluate(&g, ab, &src).unwrap(),
            Value::matrix(2, 2, vec![58.0, 64.0, 139.0, 154.0])
        );
        let t = g.transpose(ab).unwrap();
        assert_eq!(
            evaluate(&g, t, &src).unwrap(),
            Value::matrix(2, 2, vec![58.0, 139.0, 64.0, 154.0])
        );
    }

    #[test]
    fn aggregations() {
        let mut g = ExprGraph::new();
        let src = MemSources::new();
        let v = g.literal(vec![4.0, -2.0, 10.0, 0.0]);
        for (op, want) in [
            (AggOp::Sum, 12.0),
            (AggOp::Mean, 3.0),
            (AggOp::Min, -2.0),
            (AggOp::Max, 10.0),
        ] {
            let a = g.agg(op, v);
            assert_eq!(evaluate(&g, a, &src).unwrap().as_scalar(), want, "{op:?}");
        }
    }

    #[test]
    fn range_values() {
        let mut g = ExprGraph::new();
        let src = MemSources::new();
        let r = g.range(-2, 5);
        assert_eq!(
            evaluate(&g, r, &src).unwrap(),
            Value::vector(vec![-2.0, -1.0, 0.0, 1.0, 2.0])
        );
    }
}
